//===- sim/ReplayKernels.h - Shared trace-replay kernels --------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chunk-fed replay kernels shared by the sequential sweep stream
/// (SweepEngine.cpp) and the set-sharded replay engine
/// (ShardedReplay.cpp). Internal to src/sim — the public surface is
/// urcm/sim/SweepEngine.h and urcm/sim/ShardedReplay.h.
///
/// Every kernel is a stream — construct, feed(events), finish() — so
/// the streaming pipeline and the materialized-trace path execute the
/// same per-event code and cannot diverge.
///
/// The two lock-step kernels (LRUTwoWayStream, GenericMultiStream) take
/// an optional shard divisor: a kernel constructed with ShardDiv = N
/// replays a *set shard*, the subsequence of the trace whose events map
/// to cache sets congruent to one residue mod N. Set-associative state
/// is strictly per-set (lookup, victim choice, recency ticks all stay
/// inside one set), so replaying each residue class independently and
/// summing the counters is bit-identical to the sequential replay; the
/// kernel compacts the sets it owns into localSet = globalSet / N so a
/// shard allocates 1/N of the tag state. The stack-distance kernel
/// needs no shard form — it models fully-associative caches (one set),
/// which shard across *capacities* instead: each shard instance sweeps
/// a slice of the size list over the full trace.
///
/// See SweepEngine.cpp's file comment for the hole-extended Mattson
/// algorithm implemented by StackDistanceStream.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_REPLAYKERNELS_H
#define URCM_SIM_REPLAYKERNELS_H

#include "urcm/sim/SweepEngine.h"
#include "urcm/sim/TraceSim.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace urcm {
namespace detail {

/// computeNextLineUses for an IgnoreHints replay: bypassed events count
/// as through-cache accesses there, so the next-use index must include
/// them.
inline std::shared_ptr<const std::vector<uint64_t>>
computeNextLineUsesUnhinted(const std::vector<TraceEvent> &Trace,
                            uint32_t LineWords) {
  CacheConfig Geo;
  Geo.LineWords = LineWords;
  CacheGeometry G(Geo);
  auto Next = std::make_shared<std::vector<uint64_t>>(
      Trace.size(), std::numeric_limits<uint64_t>::max());
  std::unordered_map<uint64_t, uint64_t> NextOfLine;
  for (uint64_t Index = Trace.size(); Index-- > 0;) {
    uint64_t LA = G.lineAddr(Trace[Index].Addr);
    auto It = NextOfLine.find(LA);
    if (It != NextOfLine.end())
      (*Next)[Index] = It->second;
    NextOfLine[LA] = Index;
  }
  return Next;
}

/// True if \p P can be served by the specialized two-way LRU kernel
/// below.
inline bool lruTwoWayEligible(const SweepPoint &P) {
  return P.Policy == TracePolicy::LRU &&
         P.Config.Write == WritePolicy::WriteBack &&
         P.Config.LineWords == 1 && P.Config.Assoc == 2 &&
         P.Config.NumLines >= 2 &&
         (P.Config.NumLines & (P.Config.NumLines - 1)) == 0;
}

/// True if \p P can be replayed as independent set shards: replacement
/// state must be strictly set-local. LRU and FIFO qualify (their ticks
/// only order events *within* a set, and a shard feeds each of its sets
/// the same relative event order as the full trace), as do TreePLRU
/// (per-set tree bits) and SRRIP (per-line RRPVs aged per set). Random
/// does not — every miss anywhere consumes the next value of one shared
/// RNG sequence, so victim choice depends on the global interleaving of
/// sets. MIN does not either: its next-use lookups are indexed by
/// global trace position, which a shard subsequence loses. Neither does
/// LivenessBypass: its predictor table is global across sets.
inline bool setShardEligible(const SweepPoint &P) {
  return cachePolicySetShardEligible(P.Policy);
}

/// Specialized lock-step replay for two-way LRU write-back caches with
/// one-word lines and power-of-two line counts — the paper's preferred
/// data-cache shape and by far the hottest sweep configuration.
/// Counters are bit-identical to TraceReplayer; the win is the state
/// encoding: each set is a two-entry move-to-front list of tag words
/// (bit 63 = dirty, all-ones = invalid), so the common case — a hit on
/// the most recent way — is one load and one compare, with no tick
/// bookkeeping (for two ways, position *is* recency).
///
/// Invariants: among valid ways of a set, slot 0 is the more recently
/// used; invalid ways can sit in either slot (an access always leaves
/// the touched line in slot 0, and dead-tag/bypass frees invalidate in
/// place). Victim choice matches DataCache::chooseVictim: an invalid
/// way first, else the LRU way (slot 1).
///
/// With \p ShardDiv = N > 1 the instance replays one set shard: callers
/// feed only events whose set index falls in one residue class mod N,
/// and the set is compacted to globalSet / N (the shard's sets,
/// enumerated in order). The unsharded mapping stays division-free; a
/// power-of-two divisor lowers to a shift.
class LRUTwoWayStream {
  static constexpr uint64_t DirtyBit = uint64_t(1) << 63;
  static constexpr uint64_t TagMask = ~DirtyBit;
  static constexpr uint64_t Invalid = ~uint64_t(0);

  enum class ShardMap { None, Shift, Div };

  struct Way2Cache {
    uint64_t SetMask;
    uint64_t ShardDiv;
    uint32_t ShardShift;
    bool Hinted;
    std::vector<uint64_t> Tags;
    CacheStats St;
    /// Per-point attribution table (null: off, the common case).
    RefAttribution *Attr = nullptr;
    /// Installer RefId per way, parallel to Tags; sized on demand by
    /// setAttribution.
    std::vector<uint16_t> InstalledBy;
  };
  std::vector<Way2Cache> Caches;

public:
  explicit LRUTwoWayStream(const std::vector<SweepPoint> &Points,
                           uint32_t ShardDiv = 1) {
    assert(ShardDiv >= 1);
    Caches.reserve(Points.size());
    for (const SweepPoint &P : Points) {
      assert(lruTwoWayEligible(P));
      const uint64_t NumSets = P.Config.NumLines / 2;
      const uint64_t LocalSets = (NumSets + ShardDiv - 1) / ShardDiv;
      uint32_t Shift = 0;
      while ((uint64_t(1) << Shift) < ShardDiv)
        ++Shift;
      Caches.push_back({NumSets - 1, ShardDiv, Shift, !P.IgnoreHints,
                        std::vector<uint64_t>(LocalSets * 2, Invalid),
                        CacheStats(), /*Attr=*/nullptr,
                        /*InstalledBy=*/{}});
    }
  }

  /// Routes attribution for the point at \p PointIdx into \p A (see
  /// RefAttribution; counter sites mirror TwoWayWB1Cache's, so shard
  /// tables merge bit-identically).
  void setAttribution(size_t PointIdx, RefAttribution *A) {
    Way2Cache &C = Caches[PointIdx];
    C.Attr = A;
    if (A && C.InstalledBy.size() != C.Tags.size())
      C.InstalledBy.assign(C.Tags.size(), MemRefInfo::NoRefId);
  }

  void feed(const TraceEvent *Events, size_t Count) {
    // Configuration-major: each cache streams the whole chunk with its
    // tag pointer, set mask, and counters held in registers, and the
    // chunk itself stays hot across passes. Caches are mutually
    // independent, so the interchange cannot change any counter.
    for (Way2Cache &C : Caches) {
      if (C.Attr) {
        if (C.ShardDiv == 1)
          feedOne<ShardMap::None, true>(C, Events, Count);
        else if ((C.ShardDiv & (C.ShardDiv - 1)) == 0)
          feedOne<ShardMap::Shift, true>(C, Events, Count);
        else
          feedOne<ShardMap::Div, true>(C, Events, Count);
      } else if (C.ShardDiv == 1) {
        feedOne<ShardMap::None, false>(C, Events, Count);
      } else if ((C.ShardDiv & (C.ShardDiv - 1)) == 0) {
        feedOne<ShardMap::Shift, false>(C, Events, Count);
      } else {
        feedOne<ShardMap::Div, false>(C, Events, Count);
      }
    }
  }

  std::vector<CacheStats> finish() {
    std::vector<CacheStats> Out;
    Out.reserve(Caches.size());
    for (Way2Cache &C : Caches) {
      for (uint64_t T : C.Tags)
        if (T != Invalid && (T & DirtyBit))
          ++C.St.FlushWriteBackWords;
      Out.push_back(C.St);
    }
    return Out;
  }

private:
  template <ShardMap Map, bool Attrib>
  void feedOne(Way2Cache &C, const TraceEvent *Events, size_t Count) {
    uint64_t *const Tags = C.Tags.data();
    [[maybe_unused]] uint16_t *const IB =
        Attrib ? C.InstalledBy.data() : nullptr;
    [[maybe_unused]] RefAttribution *const Attr = C.Attr;
    const uint64_t SetMask = C.SetMask;
    const uint64_t ShardDiv = C.ShardDiv;
    const uint32_t ShardShift = C.ShardShift;
    const bool Hinted = C.Hinted;
    CacheStats St = C.St;
    for (const TraceEvent *E = Events, *End = Events + Count; E != End;
         ++E) {
      const uint64_t A = E->Addr;
      const bool W = E->IsWrite;
      [[maybe_unused]] const uint16_t Ref = E->RefId;
      uint64_t Set = A & SetMask;
      if constexpr (Map == ShardMap::Shift)
        Set >>= ShardShift;
      else if constexpr (Map == ShardMap::Div)
        Set /= ShardDiv;
      uint64_t *P = Tags + (Set << 1);
      [[maybe_unused]] uint16_t *B = Attrib ? IB + (Set << 1) : nullptr;
      if (__builtin_expect(!(E->Info.Bypass & Hinted), 1)) {
        uint64_t T0 = P[0];
        if (W)
          ++St.Writes;
        else
          ++St.Reads;
        if ((T0 & TagMask) == A) {
          if constexpr (Attrib)
            ++Attr->row(Ref).Hits;
          if (W) {
            ++St.WriteHits;
            P[0] = T0 | DirtyBit;
          } else {
            ++St.ReadHits;
          }
        } else if (uint64_t T1 = P[1]; (T1 & TagMask) == A) {
          if constexpr (Attrib) {
            ++Attr->row(Ref).Hits;
            const uint16_t Tmp = B[0];
            B[0] = B[1];
            B[1] = Tmp;
          }
          if (W) {
            ++St.WriteHits;
            T1 |= DirtyBit;
          } else {
            ++St.ReadHits;
          }
          P[1] = T0;
          P[0] = T1;
        } else {
          // Miss. One-word write-allocate skips the fetch (the store
          // overwrites the whole line).
          if constexpr (Attrib)
            ++Attr->row(Ref).Misses;
          ++St.Fills;
          if (!W)
            ++St.FillWords;
          uint64_t NewTag = W ? A | DirtyBit : A;
          if (T0 == Invalid) {
            P[0] = NewTag;
            if constexpr (Attrib)
              B[0] = Ref;
          } else {
            if (T1 != Invalid) {
              ++St.Evictions;
              if constexpr (Attrib) {
                ++Attr->row(Ref).EvictionsCaused;
                ++Attr->row(B[1]).EvictionsSuffered;
              }
              if (T1 & DirtyBit) {
                ++St.WriteBacks;
                ++St.WriteBackWords;
              }
            }
            P[1] = T0;
            P[0] = NewTag;
            if constexpr (Attrib) {
              B[1] = B[0];
              B[0] = Ref;
            }
          }
        }
        if (E->Info.LastRef & Hinted) {
          // The accessed line sits in slot 0 after every path above.
          ++St.DeadFrees;
          if (P[0] & DirtyBit) {
            ++St.DeadWriteBacksAvoided;
            if constexpr (Attrib)
              ++Attr->row(Ref).DeadWriteBacksSuppressed;
          }
          P[0] = Invalid;
        }
      } else if (W) {
        ++St.BypassWrites;
        if constexpr (Attrib)
          ++Attr->row(Ref).Bypasses;
      } else {
        // Bypass read: a resident line migrates to the register file
        // (dirty lines write back first) and frees its slot.
        if constexpr (Attrib)
          ++Attr->row(Ref).Bypasses;
        uint64_t T0 = P[0], T1 = P[1];
        uint64_t *Slot = (T0 & TagMask) == A   ? &P[0]
                         : (T1 & TagMask) == A ? &P[1]
                                               : nullptr;
        if (Slot) {
          ++St.BypassHitMigrations;
          ++St.DeadFrees;
          if (*Slot & DirtyBit) {
            ++St.WriteBacks;
            ++St.WriteBackWords;
            ++St.Evictions;
            if constexpr (Attrib) {
              ++Attr->row(Ref).EvictionsCaused;
              ++Attr->row(B[Slot - P]).EvictionsSuffered;
            }
          }
          *Slot = Invalid;
        } else {
          ++St.BypassReads;
        }
      }
    }
    C.St = St;
  }
};

/// The general lock-step walk: one policy-generic CacheModel per point,
/// advanced a chunk at a time (a running event index supplies MIN's
/// future-knowledge lookups, so batch callers that feed the whole trace
/// as one chunk see the original indexes).
///
/// \p ShardDiv > 1 builds every model in set-shard mode (see
/// CacheModel); MIN, Random and LivenessBypass points are not
/// shard-eligible (setShardEligible) and must not appear then.
class GenericMultiStream {
  std::vector<SweepPoint> Points;
  std::vector<CacheModel> Replayers;
  std::vector<TraceEvent> Stripped; // Per-chunk scratch (hints cleared).
  bool AnyUnhinted = false;
  uint64_t RunningIndex = 0;

public:
  /// \p FullTrace is required when any point uses TracePolicy::MIN.
  GenericMultiStream(std::vector<SweepPoint> PointsIn,
                     const std::vector<TraceEvent> *FullTrace,
                     uint32_t ShardDiv = 1)
      : Points(std::move(PointsIn)) {
    // MIN points with the same line size and hint view share one
    // next-use index.
    std::map<std::pair<uint32_t, bool>,
             std::shared_ptr<const std::vector<uint64_t>>>
        NextUses;
    Replayers.reserve(Points.size());
    for (const SweepPoint &P : Points) {
      AnyUnhinted |= P.IgnoreHints;
      std::shared_ptr<const std::vector<uint64_t>> Next;
      if (P.Policy == TracePolicy::MIN) {
        assert(FullTrace && "MIN points require the materialized trace");
        auto &Slot = NextUses[{P.Config.LineWords, P.IgnoreHints}];
        if (!Slot)
          Slot = P.IgnoreHints ? computeNextLineUsesUnhinted(
                                     *FullTrace, P.Config.LineWords)
                               : computeNextLineUses(*FullTrace,
                                                     P.Config.LineWords);
        Next = Slot;
      }
      Replayers.emplace_back(P.Config, P.Policy, std::move(Next),
                             ShardDiv);
    }
  }

  /// Routes attribution for the point at \p PointIdx into \p A. The
  /// stripped-hint scratch copies whole events, so RefIds reach
  /// IgnoreHints replayers too (hinted and stripped compilations number
  /// their references identically; see MachineProgram::RefTable).
  void setAttribution(size_t PointIdx, RefAttribution *A) {
    Replayers[PointIdx].setAttribution(A);
  }

  void feed(const TraceEvent *Events, size_t Count) {
    // Configuration-major: each replayer streams the whole chunk before
    // the next starts, keeping its cache state hot. The replayers are
    // mutually independent, so the counters equal per-point replayTrace
    // calls. IgnoreHints points see the chunk with its hint bits
    // cleared (stripped once per chunk, not per point).
    const uint64_t Base = RunningIndex;
    RunningIndex += Count;
    if (AnyUnhinted) {
      Stripped.assign(Events, Events + Count);
      for (TraceEvent &E : Stripped) {
        E.Info.Bypass = false;
        E.Info.LastRef = false;
      }
    }
    const size_t N = Points.size();
    for (size_t P = 0; P != N; ++P) {
      const TraceEvent *Src =
          Points[P].IgnoreHints && AnyUnhinted ? Stripped.data() : Events;
      // One policy dispatch per (point, chunk), not per event.
      Replayers[P].feed(Src, Count, Base);
    }
  }

  std::vector<CacheStats> finish() {
    std::vector<CacheStats> Out;
    Out.reserve(Replayers.size());
    for (TraceReplayer &R : Replayers)
      Out.push_back(R.finish());
    return Out;
  }
};

constexpr uint64_t StackNever = std::numeric_limits<uint64_t>::max();

/// Fenwick tree of 0/1 flags over a growable 1-based position domain.
/// ensure() extends the domain geometrically, preserving the set flags
/// (an O(domain) rebuild per doubling — amortized constant per
/// position, and zero rebuilds when the final domain is reserved up
/// front, as the batch wrappers do).
class BitTree {
public:
  uint64_t total() const { return Total; }

  /// Grows the domain so position \p N is addressable.
  void ensure(uint64_t N) {
    if (N < Tree.size())
      return;
    uint64_t NewDomain =
        std::max<uint64_t>(N, Tree.empty() ? 64 : 2 * (Tree.size() - 1));
    Flags.resize(NewDomain + 1, 0);
    Tree.assign(NewDomain + 1, 0);
    LogN = 0;
    while ((uint64_t(1) << (LogN + 1)) <= NewDomain)
      ++LogN;
    // Linear Fenwick rebuild: by the time position I propagates to its
    // parent, every child range of I has already folded into Tree[I].
    for (uint64_t I = 1; I <= NewDomain; ++I) {
      Tree[I] += Flags[I];
      uint64_t J = I + (I & (~I + 1));
      if (J <= NewDomain)
        Tree[J] += Tree[I];
    }
  }

  void set(uint64_t I) {
    Flags[I] = 1;
    ++Total;
    for (; I < Tree.size(); I += I & (~I + 1))
      ++Tree[I];
  }

  void clear(uint64_t I) {
    Flags[I] = 0;
    --Total;
    for (; I < Tree.size(); I += I & (~I + 1))
      --Tree[I];
  }

  /// Number of set flags at positions <= I.
  uint64_t prefix(uint64_t I) const {
    uint64_t Sum = 0;
    for (; I > 0; I -= I & (~I + 1))
      Sum += Tree[I];
    return Sum;
  }

  /// Smallest position whose prefix is >= K (the K-th set flag);
  /// requires 1 <= K <= total().
  uint64_t select(uint64_t K) const {
    uint64_t Pos = 0;
    for (uint32_t Bit = LogN + 1; Bit-- > 0;) {
      uint64_t Next = Pos + (uint64_t(1) << Bit);
      if (Next < Tree.size() && Tree[Next] < K) {
        Pos = Next;
        K -= Tree[Next];
      }
    }
    return Pos + 1;
  }

private:
  std::vector<uint32_t> Tree;
  std::vector<uint8_t> Flags;
  uint64_t Total = 0;
  uint32_t LogN = 0;
};

/// Chunk-fed form of the hole-extended Mattson sweep (see
/// SweepEngine.cpp's file comment for the update rules). One instance
/// per hint view.
class StackDistanceStream {
  static constexpr uint64_t Never = StackNever;

  /// DirtyMin = smallest tracked-or-not capacity whose copy of the line
  /// is dirty (Never when clean in every size).
  struct LineState {
    uint64_t Ts;
    uint64_t DirtyMin;
  };

  std::vector<uint32_t> NumLines;
  bool IgnoreHints;
  std::vector<CacheStats> Stats;
  BitTree All;   // Valid lines and holes.
  BitTree Holes; // Holes only.
  std::unordered_map<uint64_t, LineState> Lines;
  std::vector<uint64_t> AddrOfTs;
  uint64_t NextTs = 0;

  // 0-based stack depth: number of entries more recent than Ts.
  uint64_t depthOf(uint64_t Ts) const {
    return All.total() - All.prefix(Ts);
  }

public:
  StackDistanceStream(std::vector<uint32_t> NumLinesIn, bool IgnoreHints)
      : NumLines(std::move(NumLinesIn)), IgnoreHints(IgnoreHints),
        Stats(NumLines.size()) {}

  /// Pre-sizes the timestamp domain (each event consumes at most one
  /// fresh timestamp).
  void reserve(uint64_t ExpectedEvents) {
    All.ensure(ExpectedEvents + 1);
    Holes.ensure(ExpectedEvents + 1);
    if (AddrOfTs.size() < ExpectedEvents + 2)
      AddrOfTs.resize(ExpectedEvents + 2, 0);
  }

  void feed(const TraceEvent *Events, size_t Count) {
    const size_t NumSizes = NumLines.size();
    if (NumSizes == 0)
      return;
    // Grow the timestamp domain ahead of the chunk.
    All.ensure(NextTs + Count + 1);
    Holes.ensure(NextTs + Count + 1);
    if (AddrOfTs.size() < NextTs + Count + 2)
      AddrOfTs.resize(
          std::max<uint64_t>(NextTs + Count + 2, 2 * AddrOfTs.size()), 0);

    for (const TraceEvent *EP = Events, *EEnd = Events + Count;
         EP != EEnd; ++EP) {
      const TraceEvent &E = *EP;
      const uint64_t LA = E.Addr; // One-word lines: address == line addr.
      const bool Bypass = !IgnoreHints && E.Info.Bypass;
      const bool LastRef = !IgnoreHints && E.Info.LastRef;
      auto It = Lines.find(LA);

      if (Bypass) {
        if (E.IsWrite) {
          // UmAm_STORE: straight to memory in every size.
          for (CacheStats &St : Stats)
            ++St.BypassWrites;
          continue;
        }
        if (It == Lines.end()) {
          for (CacheStats &St : Stats)
            ++St.BypassReads;
          continue;
        }
        // UmAm_LOAD: sizes holding the line migrate-and-free it (dirty
        // copies are written back first, see DataCache::read); the rest
        // read memory directly.
        const uint64_t D = depthOf(It->second.Ts);
        const uint64_t DirtyMin = It->second.DirtyMin;
        for (size_t K = 0; K != NumSizes; ++K) {
          CacheStats &St = Stats[K];
          const uint64_t S = NumLines[K];
          if (S > D) {
            ++St.BypassHitMigrations;
            ++St.DeadFrees;
            if (DirtyMin <= S) {
              ++St.WriteBacks;
              ++St.WriteBackWords;
              ++St.Evictions;
            }
          } else {
            ++St.BypassReads;
          }
        }
        // The entry becomes a hole in place: every size that held the
        // line gains a free slot at its stack position.
        Holes.set(It->second.Ts);
        Lines.erase(It);
        continue;
      }

      // Through-cache access. All queries run against the pre-access
      // stack; mutations follow after the stats loop.
      const uint64_t D = It == Lines.end() ? Never : depthOf(It->second.Ts);
      const uint64_t TotalBefore = All.total();
      uint64_t HoleTs = 0;
      uint64_t PHole = Never; // 0-based depth of the topmost hole.
      if (Holes.total() > 0) {
        HoleTs = Holes.select(Holes.total());
        PHole = depthOf(HoleTs);
      }
      // Sizes up to EvictMax miss with a full window and no hole in it:
      // they evict their own LRU victim, the entry at stack position S.
      const uint64_t EvictMax = std::min({D, PHole, TotalBefore});

      for (size_t K = 0; K != NumSizes; ++K) {
        CacheStats &St = Stats[K];
        const uint64_t S = NumLines[K];
        if (E.IsWrite)
          ++St.Writes;
        else
          ++St.Reads;
        if (D != Never && S > D) {
          if (E.IsWrite)
            ++St.WriteHits;
          else
            ++St.ReadHits;
          continue;
        }
        ++St.Fills;
        if (!E.IsWrite)
          ++St.FillWords; // One-word write-allocate skips the fetch.
        if (S <= EvictMax) {
          const uint64_t VictimTs = All.select(TotalBefore - S + 1);
          ++St.Evictions;
          if (Lines.find(AddrOfTs[VictimTs])->second.DirtyMin <= S) {
            ++St.WriteBacks;
            ++St.WriteBackWords;
          }
        }
      }

      // Stack update.
      const uint64_t NewTs = ++NextTs;
      AddrOfTs[NewTs] = LA;
      if (It != Lines.end()) {
        const uint64_t OldTs = It->second.Ts;
        All.clear(OldTs);
        if (PHole != Never && HoleTs > OldTs) {
          // The topmost hole moves down into the vacated slot: sizes in
          // (PHole, D] missed and consumed their free slot; hitting
          // sizes keep theirs.
          Holes.clear(HoleTs);
          All.clear(HoleTs);
          Holes.set(OldTs);
          All.set(OldTs);
        }
        It->second.Ts = NewTs;
        if (E.IsWrite)
          It->second.DirtyMin = 1;
        else if (It->second.DirtyMin != Never)
          It->second.DirtyMin = std::max(It->second.DirtyMin, D + 1);
      } else {
        // Miss everywhere: the topmost hole (if any) is consumed.
        if (PHole != Never) {
          Holes.clear(HoleTs);
          All.clear(HoleTs);
        }
        Lines.emplace(LA, LineState{NewTs, E.IsWrite ? 1 : Never});
      }
      All.set(NewTs);

      if (LastRef) {
        // The line (now on top, resident in every size) is freed; dirty
        // copies are dropped without write-back.
        const LineState &LS = Lines.find(LA)->second;
        for (size_t K = 0; K != NumSizes; ++K) {
          ++Stats[K].DeadFrees;
          if (LS.DirtyMin <= NumLines[K])
            ++Stats[K].DeadWriteBacksAvoided;
        }
        Holes.set(NewTs);
        Lines.erase(LA);
      }
    }
  }

  std::vector<CacheStats> finish() {
    // End of program: flush the remaining dirty lines of every size.
    for (const auto &[Addr, LS] : Lines) {
      if (LS.DirtyMin == Never)
        continue;
      const uint64_t P = depthOf(LS.Ts);
      for (size_t K = 0; K != NumLines.size(); ++K)
        if (NumLines[K] > P && LS.DirtyMin <= NumLines[K])
          ++Stats[K].FlushWriteBackWords;
    }
    return Stats;
  }
};

} // namespace detail
} // namespace urcm

#endif // URCM_SIM_REPLAYKERNELS_H
