//===- TraceStore.cpp - Persistent compressed trace store ----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// See the header for the container format. Implementation notes:
//
//  * The codec is deliberately boring: a packed 6-bit-per-event flag
//    stream (is-write, bypass, last-ref, 2-bit delta-base selector,
//    ref-predicted) followed by a byte-aligned varint stream of zigzag
//    LEB128 address deltas against a 4-entry recent-address ring. Real
//    traces interleave stack, global and array streams; the ring lets
//    each stream delta against its own last address (usually a 1-byte
//    varint) instead of paying a 3-byte varint at every region switch.
//    The ref-predicted bit (v2) carries the static reference id: set,
//    the event's RefId is the predicted one — previous RefId plus one,
//    or NoRefId while the previous was NoRefId — which makes both
//    straight-line code (ids are numbered in code order) and unnumbered
//    traces free; clear, a zigzag varint of (RefId - predicted) follows
//    the event's address delta in the varint stream. Both streams are
//    byte-aligned and chunk-self-contained (ring and RefId predictor
//    reset per chunk), so any chunk decodes independently of the rest
//    of the file.
//
//  * Validation is front-loaded: TraceStoreReader::open walks the whole
//    file (CRCs included) before reporting Ok, because a sweep that
//    discovers corruption after feeding half the trace into replay
//    consumers cannot "un-feed" it — the engine would have to throw the
//    replay state away and restart live. After open, decode stays
//    bounds-checked anyway (the file could change under us); failures
//    turn into failed(), never UB.
//
//  * Writes go to a temp file published by atomic rename, so two
//    processes recording the same program race benignly and crashes
//    leave no partial store behind.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/TraceStore.h"

#include "urcm/sim/TraceStream.h"
#include "urcm/support/Telemetry.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <thread>

#include <unistd.h> // getpid: temp-file uniqueness across processes.

using namespace urcm;

URCM_STAT(NumStoreHits, "sim.store.hits",
          "Experiments served from the persistent trace store");
URCM_STAT(NumStoreMisses, "sim.store.misses",
          "Trace-store lookups that fell back to live simulation");
URCM_STAT(NumStoreBytesWritten, "sim.store.bytes-written",
          "Encoded bytes written to published store files");
URCM_STAT(NumStoreBytesRead, "sim.store.bytes-read",
          "Store file bytes read and validated");
URCM_STAT(StoreDecodeNs, "sim.store.decode-ns",
          "Nanoseconds spent decoding store chunks into trace events");
URCM_HISTOGRAM(StoreCompressRatio, "sim.store.compress-ratio",
               "Encoded size as a percent of the raw 8-byte-per-event "
               "trace, per committed store file");

//===----------------------------------------------------------------------===//
// Primitive codecs.
//===----------------------------------------------------------------------===//

namespace {

constexpr char HeaderMagic[8] = {'U', 'R', 'C', 'M', 'T', 'R', 'C', '\x01'};
constexpr char FooterMagic[8] = {'U', 'R', 'C', 'M', 'E', 'N', 'D', '\x01'};
// v2: the per-event flag stream grew from 5 to 6 bits to carry the
// static reference id (attribution profiler). The version is part of
// the content-hash salt below, so bumping it retires existing files as
// plain misses — no migration path needed.
constexpr uint32_t FormatVersion = 2;
constexpr uint32_t ChunkSentinel = 0xFFFFFFFFu;
/// Sanity bounds a corrupt length field must not exceed (decode buffers
/// are allocated from these numbers, so garbage must be caught before
/// it sizes an allocation).
constexpr uint32_t MaxChunkPayloadBytes = 1u << 26; // 64 MB
constexpr uint32_t MaxChunkEvents = 1u << 22;       // 4M events
constexpr uint32_t MaxSummaryBytes = 1u << 26;

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t Z) {
  return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
}

size_t varintLen(uint64_t V) {
  size_t Len = 1;
  while (V >= 0x80) {
    V >>= 7;
    ++Len;
  }
  return Len;
}

void appendVarint(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(V));
}

/// Bounds-checked LEB128 read; false on overrun or an over-long (>10
/// byte) encoding.
bool readVarint(const uint8_t *Bytes, size_t Size, size_t &Pos,
                uint64_t &Out) {
  uint64_t V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    if (Pos >= Size)
      return false;
    uint8_t B = Bytes[Pos++];
    V |= static_cast<uint64_t>(B & 0x7F) << Shift;
    if (!(B & 0x80)) {
      Out = V;
      return true;
    }
  }
  return false;
}

void appendMagic(std::vector<uint8_t> &Out, const char (&Magic)[8]) {
  for (char C : Magic)
    Out.push_back(static_cast<uint8_t>(C));
}

void appendLE32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

void appendLE64(std::vector<uint8_t> &Out, uint64_t V) {
  appendLE32(Out, static_cast<uint32_t>(V));
  appendLE32(Out, static_cast<uint32_t>(V >> 32));
}

uint32_t readLE32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | static_cast<uint32_t>(P[1]) << 8 |
         static_cast<uint32_t>(P[2]) << 16 |
         static_cast<uint32_t>(P[3]) << 24;
}

uint64_t readLE64(const uint8_t *P) {
  return static_cast<uint64_t>(readLE32(P)) |
         static_cast<uint64_t>(readLE32(P + 4)) << 32;
}

} // namespace

uint32_t urcm::detail::crc32(const uint8_t *Bytes, size_t Count) {
  // IEEE 802.3 reflected CRC-32, nibble-at-a-time (16-entry table: small
  // enough to stay hot, fast enough for ~100 KB chunks).
  static const std::array<uint32_t, 16> Table = [] {
    std::array<uint32_t, 16> T{};
    for (uint32_t I = 0; I != 16; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 4; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I != Count; ++I) {
    C = Table[(C ^ Bytes[I]) & 0xF] ^ (C >> 4);
    C = Table[(C ^ (Bytes[I] >> 4)) & 0xF] ^ (C >> 4);
  }
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Chunk payload codec.
//===----------------------------------------------------------------------===//

/// The RefId the codec predicts after seeing \p Prev: code-order
/// numbering makes "previous plus one" the straight-line common case,
/// and an unnumbered (NoRefId) event predicts another unnumbered one so
/// hint-free traces stay free of per-event ref bytes.
static uint16_t predictRefId(uint16_t Prev) {
  return Prev == MemRefInfo::NoRefId
             ? MemRefInfo::NoRefId
             : static_cast<uint16_t>(Prev + 1);
}

void urcm::detail::encodeChunkPayload(const TraceEvent *Events,
                                      size_t Count,
                                      std::vector<uint8_t> &Out) {
  const size_t BitBytes = (Count * 6 + 7) / 8;
  Out.clear();
  Out.resize(BitBytes, 0);
  Out.reserve(BitBytes + Count * 2); // Typical: ~1-2 byte varints.
  uint32_t Ring[4] = {0, 0, 0, 0};
  unsigned RingPos = 0;
  uint16_t PrevRef = MemRefInfo::NoRefId;
  for (size_t I = 0; I != Count; ++I) {
    const TraceEvent &E = Events[I];
    unsigned BestSel = 0;
    size_t BestLen = ~size_t(0);
    uint64_t BestZig = 0;
    for (unsigned S = 0; S != 4; ++S) {
      uint64_t Zig = zigzag(static_cast<int64_t>(E.Addr) -
                            static_cast<int64_t>(Ring[S]));
      size_t Len = varintLen(Zig);
      if (Len < BestLen) {
        BestLen = Len;
        BestSel = S;
        BestZig = Zig;
      }
    }
    const uint16_t Predicted = predictRefId(PrevRef);
    const uint32_t Bits =
        (E.IsWrite ? 1u : 0u) | (E.Info.Bypass ? 2u : 0u) |
        (E.Info.LastRef ? 4u : 0u) | (BestSel << 3) |
        (E.RefId == Predicted ? 32u : 0u);
    const size_t BitPos = I * 6;
    Out[BitPos >> 3] |= static_cast<uint8_t>(Bits << (BitPos & 7));
    if ((BitPos & 7) > 2)
      Out[(BitPos >> 3) + 1] |=
          static_cast<uint8_t>(Bits >> (8 - (BitPos & 7)));
    appendVarint(Out, BestZig);
    if (E.RefId != Predicted)
      appendVarint(Out, zigzag(static_cast<int64_t>(E.RefId) -
                               static_cast<int64_t>(Predicted)));
    PrevRef = E.RefId;
    Ring[RingPos] = E.Addr;
    RingPos = (RingPos + 1) & 3;
  }
}

bool urcm::detail::decodeChunkPayload(const uint8_t *Payload,
                                      size_t PayloadBytes, size_t Count,
                                      std::vector<TraceEvent> &Out) {
  const size_t BitBytes = (Count * 6 + 7) / 8;
  if (PayloadBytes < BitBytes)
    return false;
  const uint8_t *Varints = Payload + BitBytes;
  const size_t VarintBytes = PayloadBytes - BitBytes;
  size_t VPos = 0;
  Out.clear();
  Out.reserve(Count);
  uint32_t Ring[4] = {0, 0, 0, 0};
  unsigned RingPos = 0;
  uint16_t PrevRef = MemRefInfo::NoRefId;
  for (size_t I = 0; I != Count; ++I) {
    const size_t BitPos = I * 6;
    uint32_t Bits = Payload[BitPos >> 3] >> (BitPos & 7);
    if ((BitPos & 7) > 2)
      Bits |= static_cast<uint32_t>(Payload[(BitPos >> 3) + 1])
              << (8 - (BitPos & 7));
    Bits &= 63;
    uint64_t Zig;
    if (!readVarint(Varints, VarintBytes, VPos, Zig))
      return false;
    const uint32_t Addr = static_cast<uint32_t>(
        static_cast<int64_t>(Ring[(Bits >> 3) & 3]) + unzigzag(Zig));
    const uint16_t Predicted = predictRefId(PrevRef);
    uint16_t RefId = Predicted;
    if (!(Bits & 32)) {
      if (!readVarint(Varints, VarintBytes, VPos, Zig))
        return false;
      RefId = static_cast<uint16_t>(static_cast<int64_t>(Predicted) +
                                    unzigzag(Zig));
    }
    TraceEvent E;
    E.Addr = Addr;
    E.IsWrite = (Bits & 1) != 0;
    E.Info.Bypass = (Bits & 2) != 0;
    E.Info.LastRef = (Bits & 4) != 0;
    E.RefId = RefId;
    Out.push_back(E);
    PrevRef = RefId;
    Ring[RingPos] = Addr;
    RingPos = (RingPos + 1) & 3;
  }
  return VPos == VarintBytes; // Trailing bytes mean a malformed payload.
}

//===----------------------------------------------------------------------===//
// SimResult summary codec (Trace field excluded by construction).
//===----------------------------------------------------------------------===//

namespace {

/// The CacheStats counters in serialization order. Listing them once
/// keeps encode and decode in lock-step; adding a field here without
/// bumping FormatVersion would silently corrupt old files, so the
/// format version must change with this list.
std::array<uint64_t *, 16> statsFields(CacheStats &S) {
  return {&S.Reads,          &S.Writes,
          &S.ReadHits,       &S.WriteHits,
          &S.Fills,          &S.FillWords,
          &S.WriteBacks,     &S.WriteBackWords,
          &S.Evictions,      &S.DeadFrees,
          &S.DeadWriteBacksAvoided, &S.BypassReads,
          &S.BypassWrites,   &S.BypassHitMigrations,
          &S.WriteThroughWords, &S.FlushWriteBackWords};
}

void serializeSummary(const SimResult &R, std::vector<uint8_t> &Out) {
  Out.clear();
  Out.push_back(R.Halted ? 1 : 0);
  appendVarint(Out, R.Error.size());
  Out.insert(Out.end(), R.Error.begin(), R.Error.end());
  appendVarint(Out, R.Steps);
  appendVarint(Out, R.Output.size());
  for (int64_t V : R.Output)
    appendVarint(Out, zigzag(V));
  // Const-cast through the shared field list so encode and decode use
  // the identical ordering.
  CacheStats Cache = R.Cache, ICache = R.ICache;
  for (uint64_t *F : statsFields(Cache))
    appendVarint(Out, *F);
  appendVarint(Out, R.Refs.Unambiguous);
  appendVarint(Out, R.Refs.Ambiguous);
  appendVarint(Out, R.Refs.Spill);
  appendVarint(Out, R.Refs.Unknown);
  appendVarint(Out, R.Refs.Bypassed);
  appendVarint(Out, R.Refs.LastRefTagged);
  for (uint64_t *F : statsFields(ICache))
    appendVarint(Out, *F);
  appendVarint(Out, R.InstructionFetches);
  appendVarint(Out, R.BypassTransitions);
  appendVarint(Out, R.CoherenceViolations);
}

bool deserializeSummary(const uint8_t *Bytes, size_t Size, SimResult &R) {
  size_t Pos = 0;
  uint64_t V;
  if (Size < 1)
    return false;
  R.Halted = Bytes[Pos++] != 0;
  if (!readVarint(Bytes, Size, Pos, V) || V > Size - Pos)
    return false;
  R.Error.assign(reinterpret_cast<const char *>(Bytes + Pos),
                 static_cast<size_t>(V));
  Pos += static_cast<size_t>(V);
  if (!readVarint(Bytes, Size, Pos, R.Steps))
    return false;
  if (!readVarint(Bytes, Size, Pos, V) || V > MaxSummaryBytes)
    return false;
  R.Output.clear();
  R.Output.reserve(static_cast<size_t>(V));
  for (uint64_t I = 0, N = V; I != N; ++I) {
    if (!readVarint(Bytes, Size, Pos, V))
      return false;
    R.Output.push_back(unzigzag(V));
  }
  for (uint64_t *F : statsFields(R.Cache))
    if (!readVarint(Bytes, Size, Pos, *F))
      return false;
  if (!readVarint(Bytes, Size, Pos, R.Refs.Unambiguous) ||
      !readVarint(Bytes, Size, Pos, R.Refs.Ambiguous) ||
      !readVarint(Bytes, Size, Pos, R.Refs.Spill) ||
      !readVarint(Bytes, Size, Pos, R.Refs.Unknown) ||
      !readVarint(Bytes, Size, Pos, R.Refs.Bypassed) ||
      !readVarint(Bytes, Size, Pos, R.Refs.LastRefTagged))
    return false;
  for (uint64_t *F : statsFields(R.ICache))
    if (!readVarint(Bytes, Size, Pos, *F))
      return false;
  if (!readVarint(Bytes, Size, Pos, R.InstructionFetches) ||
      !readVarint(Bytes, Size, Pos, R.BypassTransitions) ||
      !readVarint(Bytes, Size, Pos, R.CoherenceViolations))
    return false;
  R.Trace.clear();
  return Pos == Size;
}

} // namespace

//===----------------------------------------------------------------------===//
// Content hash.
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a over a canonical little-endian serialization.
struct Fnv1a {
  uint64_t H = 14695981039346656037ull;

  void bytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != Size; ++I) {
      H ^= P[I];
      H *= 1099511628211ull;
    }
  }
  void u8(uint8_t V) { bytes(&V, 1); }
  void u32(uint32_t V) {
    uint8_t B[4] = {static_cast<uint8_t>(V), static_cast<uint8_t>(V >> 8),
                    static_cast<uint8_t>(V >> 16),
                    static_cast<uint8_t>(V >> 24)};
    bytes(B, 4);
  }
  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
};

void hashCacheConfig(Fnv1a &H, const CacheConfig &C) {
  H.u32(C.NumLines);
  H.u32(C.Assoc);
  H.u32(C.LineWords);
  H.u8(static_cast<uint8_t>(C.Policy));
  H.u8(static_cast<uint8_t>(C.Write));
  H.u64(C.Seed);
}

/// The data cache is a pure observer of the reference stream: the trace
/// a run records is identical under every replacement policy and RNG
/// seed, so neither salts the content hash. One stored trace therefore
/// warm-serves the whole policy grid; the engine re-derives the base
/// configuration's counters by replay (SweepEngine::serveFromStore)
/// instead of trusting the stored summary's cache row. Geometry and the
/// write policy stay salted conservatively: they are cheap to keep, and
/// narrowing the invariant to "policy and seed are observers" is the
/// exact guarantee the sweep's policy grid needs.
void hashDataCacheConfig(Fnv1a &H, const CacheConfig &C) {
  H.u32(C.NumLines);
  H.u32(C.Assoc);
  H.u32(C.LineWords);
  H.u8(static_cast<uint8_t>(C.Write));
}

} // namespace

uint64_t urcm::traceContentHash(const MachineProgram &Prog,
                                const SimConfig &Config) {
  Fnv1a H;
  // Format salt: bumping FormatVersion retires every existing file.
  H.bytes(HeaderMagic, sizeof(HeaderMagic));
  H.u32(FormatVersion);

  // The program: everything execution touches. MemInfo.Class feeds the
  // DynamicRefStats in the stored summary, so it is part of the
  // fingerprint even though the cache never sees it.
  H.u64(Prog.Code.size());
  for (const MInst &I : Prog.Code) {
    H.u8(static_cast<uint8_t>(I.Op));
    H.u32(I.Rd);
    H.u32(I.Rs1);
    H.u32(I.Rs2);
    H.u64(static_cast<uint64_t>(I.Imm));
    H.u8(I.UseImm ? 1 : 0);
    H.u32(I.Target);
    H.u8(static_cast<uint8_t>(I.MemInfo.Class));
    H.u8(I.MemInfo.Bypass ? 1 : 0);
    H.u8(I.MemInfo.LastRef ? 1 : 0);
    H.u32(static_cast<uint32_t>(I.MemInfo.AliasSetId));
    H.u8(I.CodeDeadHint ? 1 : 0);
  }
  H.u32(Prog.EntryIndex);
  H.u64(Prog.Globals.size());
  for (const MachineProgram::GlobalLayout &G : Prog.Globals) {
    H.str(G.Name);
    H.u32(G.Address);
    H.u32(G.SizeWords);
  }
  H.u64(Prog.GlobalBase);
  H.u64(Prog.StackTop);

  // Simulation inputs that can change the trace or the stored summary.
  // The execution engine, sinks, chunk sizes and reserve hints are pure
  // observers and deliberately excluded.
  H.u64(Config.MaxSteps);
  H.u8(Config.Paranoid ? 1 : 0);
  hashDataCacheConfig(H, Config.Cache);
  H.u8(Config.ModelICache ? 1 : 0);
  if (Config.ModelICache)
    hashCacheConfig(H, Config.ICache);
  return H.H;
}

std::string urcm::traceStorePath(const std::string &Dir,
                                 uint64_t ContentHash) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.urctrc",
                static_cast<unsigned long long>(ContentHash));
  std::string Path = Dir;
  if (!Path.empty() && Path.back() != '/')
    Path += '/';
  return Path + Name;
}

//===----------------------------------------------------------------------===//
// TraceStoreWriter
//===----------------------------------------------------------------------===//

TraceStoreWriter::~TraceStoreWriter() { discard(); }

bool TraceStoreWriter::open(const std::string &Dir, uint64_t ContentHash,
                            DiagnosticEngine &Diags) {
  discard();
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Diags.error({}, "trace store: cannot create directory '" + Dir +
                        "': " + EC.message());
    return false;
  }
  FinalPath = traceStorePath(Dir, ContentHash);
  // Unique per process and per writer: concurrent recorders of the same
  // program write distinct temp files and race only on the final
  // rename, which is atomic (both published files are valid).
  static std::atomic<uint64_t> Seq{0};
  TempPath = FinalPath + ".tmp." + std::to_string(::getpid()) + "." +
             std::to_string(Seq.fetch_add(1, std::memory_order_relaxed));
  File = std::fopen(TempPath.c_str(), "wb");
  if (!File) {
    Diags.error({}, "trace store: cannot create '" + TempPath +
                        "': " + std::strerror(errno));
    TempPath.clear();
    return false;
  }
  Hash = ContentHash;
  Events = Chunks = BytesWritten = 0;
  Failed = false;
  Pending.clear();
  Pending.reserve(ChunkEvents);

  std::vector<uint8_t> Header;
  appendMagic(Header, HeaderMagic);
  appendLE32(Header, FormatVersion);
  appendLE32(Header, 0); // Flags, reserved.
  appendLE64(Header, Hash);
  appendLE32(Header, ChunkEvents);
  appendLE32(Header, 0); // Reserved.
  if (std::fwrite(Header.data(), 1, Header.size(), File) != Header.size())
    Failed = true;
  BytesWritten += Header.size();
  return true;
}

void TraceStoreWriter::append(const TraceEvent *EventsIn, size_t Count) {
  if (!File || Failed)
    return;
  while (Count != 0) {
    const size_t Room = ChunkEvents - Pending.size();
    const size_t Take = std::min(Room, Count);
    Pending.insert(Pending.end(), EventsIn, EventsIn + Take);
    EventsIn += Take;
    Count -= Take;
    if (Pending.size() == ChunkEvents && !flushChunk())
      return;
  }
}

bool TraceStoreWriter::flushChunk() {
  if (Pending.empty())
    return true;
  detail::encodeChunkPayload(Pending.data(), Pending.size(), Encoded);
  std::vector<uint8_t> ChunkHeader;
  appendLE32(ChunkHeader, static_cast<uint32_t>(Encoded.size()));
  appendLE32(ChunkHeader, static_cast<uint32_t>(Pending.size()));
  appendLE32(ChunkHeader,
             detail::crc32(Encoded.data(), Encoded.size()));
  if (std::fwrite(ChunkHeader.data(), 1, ChunkHeader.size(), File) !=
          ChunkHeader.size() ||
      std::fwrite(Encoded.data(), 1, Encoded.size(), File) !=
          Encoded.size()) {
    Failed = true;
    return false;
  }
  BytesWritten += ChunkHeader.size() + Encoded.size();
  Events += Pending.size();
  ++Chunks;
  Pending.clear();
  return true;
}

bool TraceStoreWriter::commit(const SimResult &Summary,
                              DiagnosticEngine &Diags) {
  if (!File)
    return false; // open() already reported.
  flushChunk();
  if (!Failed) {
    std::vector<uint8_t> Tail;
    appendLE32(Tail, ChunkSentinel);
    serializeSummary(Summary, Encoded);
    appendLE32(Tail, static_cast<uint32_t>(Encoded.size()));
    Tail.insert(Tail.end(), Encoded.begin(), Encoded.end());
    appendLE32(Tail, detail::crc32(Encoded.data(), Encoded.size()));
    appendLE64(Tail, Events);
    appendLE64(Tail, Chunks);
    appendMagic(Tail, FooterMagic);
    if (std::fwrite(Tail.data(), 1, Tail.size(), File) != Tail.size() ||
        std::fflush(File) != 0 || std::ferror(File))
      Failed = true;
    BytesWritten += Tail.size();
  }
  std::fclose(File);
  File = nullptr;
  if (!Failed && std::rename(TempPath.c_str(), FinalPath.c_str()) != 0)
    Failed = true;
  if (Failed) {
    std::remove(TempPath.c_str());
    Diags.error({}, "trace store: failed to write '" + FinalPath +
                        "': " + std::strerror(errno));
    TempPath.clear();
    return false;
  }
  TempPath.clear();
  NumStoreBytesWritten.add(BytesWritten);
  if (Events != 0)
    StoreCompressRatio.record(BytesWritten * 100 /
                              (Events * sizeof(TraceEvent)));
  return true;
}

void TraceStoreWriter::discard() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  if (!TempPath.empty()) {
    std::remove(TempPath.c_str());
    TempPath.clear();
  }
}

//===----------------------------------------------------------------------===//
// TraceStoreReader
//===----------------------------------------------------------------------===//

TraceStoreReader::~TraceStoreReader() {
  if (File)
    std::fclose(File);
}

namespace {

/// Reads exactly \p Size bytes; false on short read.
bool readExact(std::FILE *File, void *Out, size_t Size) {
  return std::fread(Out, 1, Size, File) == Size;
}

} // namespace

TraceStoreReader::OpenStatus
TraceStoreReader::open(const std::string &Path, uint64_t ExpectHash,
                       DiagnosticEngine &Diags) {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  Failed = false;
  ChunksSeen = 0;

  File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    // A missing file is a plain cache miss, not a corruption report.
    NumStoreMisses.add();
    if (errno != ENOENT)
      Diags.error({}, "trace store: cannot open '" + Path +
                          "': " + std::strerror(errno));
    return errno == ENOENT ? OpenStatus::NotFound : OpenStatus::Invalid;
  }

  auto Reject = [&](const std::string &Why) {
    Diags.error({}, "trace store: rejecting '" + Path + "': " + Why +
                        " (falling back to live simulation)");
    std::fclose(File);
    File = nullptr;
    NumStoreMisses.add();
    return OpenStatus::Invalid;
  };

  uint8_t Header[32];
  if (!readExact(File, Header, sizeof(Header)))
    return Reject("truncated header");
  if (std::memcmp(Header, HeaderMagic, 8) != 0)
    return Reject("bad magic (not a trace store file)");
  if (readLE32(Header + 8) != FormatVersion)
    return Reject("format version " + std::to_string(readLE32(Header + 8)) +
                  " (expected " + std::to_string(FormatVersion) + ")");
  if (readLE64(Header + 16) != ExpectHash)
    return Reject("content hash mismatch (recorded for a different "
                  "program or simulation configuration)");
  ChunksBegin = static_cast<long>(sizeof(Header));

  // Walk and validate every chunk before serving anything: corruption
  // discovered mid-replay cannot be recovered from without restarting
  // the replay consumers.
  uint64_t SeenEvents = 0, SeenChunks = 0;
  for (;;) {
    uint8_t Word[4];
    if (!readExact(File, Word, 4))
      return Reject("truncated chunk stream");
    const uint32_t PayloadBytes = readLE32(Word);
    if (PayloadBytes == ChunkSentinel)
      break;
    uint8_t Rest[8];
    if (!readExact(File, Rest, 8))
      return Reject("truncated chunk header");
    const uint32_t Count = readLE32(Rest);
    const uint32_t Crc = readLE32(Rest + 4);
    if (PayloadBytes > MaxChunkPayloadBytes || Count > MaxChunkEvents)
      return Reject("implausible chunk size (corrupt length field)");
    Payload.resize(PayloadBytes);
    if (!readExact(File, Payload.data(), PayloadBytes))
      return Reject("truncated chunk payload");
    if (detail::crc32(Payload.data(), PayloadBytes) != Crc)
      return Reject("chunk " + std::to_string(SeenChunks) +
                    " CRC mismatch");
    SeenEvents += Count;
    ++SeenChunks;
  }

  uint8_t Word[4];
  if (!readExact(File, Word, 4))
    return Reject("truncated summary");
  const uint32_t SummaryBytes = readLE32(Word);
  if (SummaryBytes > MaxSummaryBytes)
    return Reject("implausible summary size");
  Payload.resize(SummaryBytes);
  if (!readExact(File, Payload.data(), SummaryBytes))
    return Reject("truncated summary payload");
  uint8_t SummaryCrc[4];
  if (!readExact(File, SummaryCrc, 4))
    return Reject("truncated summary CRC");
  if (detail::crc32(Payload.data(), SummaryBytes) != readLE32(SummaryCrc))
    return Reject("summary CRC mismatch");
  if (!deserializeSummary(Payload.data(), SummaryBytes, Summary))
    return Reject("malformed summary");

  uint8_t Footer[24];
  if (!readExact(File, Footer, sizeof(Footer)))
    return Reject("truncated footer");
  if (std::memcmp(Footer + 16, FooterMagic, 8) != 0)
    return Reject("bad footer magic");
  TotalEvents = readLE64(Footer);
  ChunkCount = readLE64(Footer + 8);
  if (TotalEvents != SeenEvents || ChunkCount != SeenChunks)
    return Reject("footer counts disagree with chunk contents");
  if (std::fgetc(File) != EOF)
    return Reject("trailing bytes after footer");

  NumStoreBytesRead.add(static_cast<uint64_t>(std::ftell(File)));
  if (std::fseek(File, ChunksBegin, SEEK_SET) != 0)
    return Reject("seek failed");
  NumStoreHits.add();
  return OpenStatus::Ok;
}

bool TraceStoreReader::next(std::vector<TraceEvent> &Chunk) {
  Chunk.clear();
  if (!File || Failed || ChunksSeen == ChunkCount)
    return false;
  // The file was fully validated by open(), but it may have changed on
  // disk since; every read and decode below fails cleanly instead of
  // trusting the earlier pass.
  uint8_t Header[12];
  if (!readExact(File, Header, sizeof(Header))) {
    Failed = true;
    return false;
  }
  const uint32_t PayloadBytes = readLE32(Header);
  const uint32_t Count = readLE32(Header + 4);
  if (PayloadBytes == ChunkSentinel || PayloadBytes > MaxChunkPayloadBytes ||
      Count > MaxChunkEvents) {
    Failed = true;
    return false;
  }
  Payload.resize(PayloadBytes);
  if (!readExact(File, Payload.data(), PayloadBytes)) {
    Failed = true;
    return false;
  }
  const bool Metered = telemetry::enabled();
  const uint64_t T0 = Metered ? telemetry::nowNanos() : 0;
  if (!detail::decodeChunkPayload(Payload.data(), PayloadBytes, Count,
                                  Chunk)) {
    Failed = true;
    return false;
  }
  if (Metered)
    StoreDecodeNs.add(telemetry::nowNanos() - T0);
  ++ChunksSeen;
  return true;
}

void TraceStoreReader::rewind() {
  if (!File)
    return;
  Failed = std::fseek(File, ChunksBegin, SEEK_SET) != 0;
  ChunksSeen = 0;
}

bool TraceStoreReader::readAll(std::vector<TraceEvent> &Trace) {
  rewind();
  Trace.clear();
  Trace.reserve(TotalEvents);
  std::vector<TraceEvent> Chunk;
  while (next(Chunk))
    Trace.insert(Trace.end(), Chunk.begin(), Chunk.end());
  return !Failed && ChunksSeen == ChunkCount;
}

//===----------------------------------------------------------------------===//
// Streamed decode (decode thread + SPSC hand-off, recycled buffers).
//===----------------------------------------------------------------------===//

bool urcm::streamStoredTrace(
    TraceStoreReader &Reader,
    const std::function<void(const TraceEvent *, size_t)> &Consume,
    size_t QueueDepth) {
  StreamedTrace Stream(QueueDepth);
  std::thread Decoder([&] {
    if (telemetry::enabled())
      telemetry::setThreadName("store-decoder");
    std::vector<TraceEvent> Chunk;
    while (Reader.next(Chunk)) {
      if (Chunk.empty())
        continue;
      // Hand the decoded chunk off; the returned buffer is a recycled
      // one the consumer has finished with (or a fresh empty one), so
      // the steady state allocates nothing and peak memory is O(chunk).
      Chunk = Stream.chunk(std::move(Chunk));
    }
    Stream.producerDone();
  });

  std::exception_ptr ConsumerError;
  std::vector<TraceEvent> Chunk;
  while (Stream.next(Chunk)) {
    if (ConsumerError)
      continue; // Keep draining so the decoder never deadlocks.
    try {
      Consume(Chunk.data(), Chunk.size());
    } catch (...) {
      ConsumerError = std::current_exception();
    }
  }
  Decoder.join();
  if (ConsumerError)
    std::rethrow_exception(ConsumerError);
  return !Reader.failed();
}
