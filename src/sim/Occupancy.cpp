//===- Occupancy.cpp - Dead cache-occupancy analysis ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Occupancy.h"

#include <algorithm>
#include <unordered_map>

using namespace urcm;

namespace {

/// Per-line-address event history for liveness queries: sorted event
/// indexes of through-cache reads and writes.
struct LineHistory {
  std::vector<uint64_t> Reads;
  std::vector<uint64_t> Writes;
};

/// True if line \p LA is dead at time \p Now: no through-cache read of
/// it happens after Now before its next overwrite (or ever).
bool isDeadAt(const std::unordered_map<uint64_t, LineHistory> &History,
              uint64_t LA, uint64_t Now) {
  auto It = History.find(LA);
  if (It == History.end())
    return true;
  const LineHistory &H = It->second;
  auto NextRead =
      std::upper_bound(H.Reads.begin(), H.Reads.end(), Now);
  if (NextRead == H.Reads.end())
    return true; // Never read again.
  auto NextWrite =
      std::upper_bound(H.Writes.begin(), H.Writes.end(), Now);
  if (NextWrite == H.Writes.end())
    return false; // Read again, never overwritten first.
  return *NextWrite < *NextRead; // Overwritten before the next read.
}

/// Minimal LRU cache that only tracks resident tags.
class TagCache {
public:
  explicit TagCache(const CacheConfig &Config) : Config(Config) {
    Valid.assign(Config.NumLines, false);
    Tag.assign(Config.NumLines, 0);
    LastUsed.assign(Config.NumLines, 0);
  }

  /// Accesses line \p LA (through-cache). Installs on miss.
  void access(uint64_t LA) {
    ++Tick;
    if (int32_t Way = find(LA); Way >= 0) {
      LastUsed[Way] = Tick;
      return;
    }
    uint32_t Set = setOf(LA);
    uint32_t Victim = Set * Config.Assoc;
    for (uint32_t W = Set * Config.Assoc;
         W != (Set + 1) * Config.Assoc; ++W) {
      if (!Valid[W]) {
        Victim = W;
        break;
      }
      if (LastUsed[W] < LastUsed[Victim])
        Victim = W;
    }
    Valid[Victim] = true;
    Tag[Victim] = LA;
    LastUsed[Victim] = Tick;
  }

  /// Frees the line holding \p LA if resident (dead tag / migration).
  void invalidate(uint64_t LA) {
    if (int32_t Way = find(LA); Way >= 0)
      Valid[Way] = false;
  }

  template <typename Callback> void forEachResident(Callback Visit) const {
    for (uint32_t W = 0; W != Config.NumLines; ++W)
      if (Valid[W])
        Visit(Tag[W]);
  }

private:
  uint32_t numSets() const { return Config.NumLines / Config.Assoc; }
  uint32_t setOf(uint64_t LA) const {
    return static_cast<uint32_t>(LA % numSets());
  }
  int32_t find(uint64_t LA) const {
    uint32_t Set = setOf(LA);
    for (uint32_t W = Set * Config.Assoc;
         W != (Set + 1) * Config.Assoc; ++W)
      if (Valid[W] && Tag[W] == LA)
        return static_cast<int32_t>(W);
    return -1;
  }

  CacheConfig Config;
  std::vector<bool> Valid;
  std::vector<uint64_t> Tag;
  std::vector<uint64_t> LastUsed;
  uint64_t Tick = 0;
};

} // namespace

OccupancyStats
urcm::analyzeDeadOccupancy(const std::vector<TraceEvent> &Trace,
                           const CacheConfig &Config,
                           uint64_t SampleInterval) {
  OccupancyStats Stats;
  if (SampleInterval == 0)
    SampleInterval = 1;

  // Pass 1: per-line read/write history (through-cache accesses only —
  // bypassed references never occupy lines).
  std::unordered_map<uint64_t, LineHistory> History;
  for (uint64_t Index = 0; Index != Trace.size(); ++Index) {
    const TraceEvent &E = Trace[Index];
    if (E.Info.Bypass)
      continue;
    uint64_t LA = E.Addr / Config.LineWords;
    LineHistory &H = History[LA];
    (E.IsWrite ? H.Writes : H.Reads).push_back(Index);
  }

  // Pass 2: replay with an LRU tag cache, honoring the hint bits, and
  // sample dead residency.
  TagCache Cache(Config);
  for (uint64_t Index = 0; Index != Trace.size(); ++Index) {
    const TraceEvent &E = Trace[Index];
    uint64_t LA = E.Addr / Config.LineWords;
    if (E.Info.Bypass) {
      if (!E.IsWrite)
        Cache.invalidate(LA); // UmAm_LOAD migration frees a hit.
    } else {
      Cache.access(LA);
      if (E.Info.LastRef && Config.LineWords == 1)
        Cache.invalidate(LA);
    }

    if (Index % SampleInterval == 0) {
      ++Stats.Samples;
      Cache.forEachResident([&](uint64_t ResidentLA) {
        ++Stats.ResidentLineSamples;
        if (isDeadAt(History, ResidentLA, Index))
          ++Stats.DeadLineSamples;
      });
    }
  }
  return Stats;
}
