//===- TraceStream.cpp - Streaming trace pipeline ------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/TraceStream.h"

#include "urcm/support/Telemetry.h"

#include <thread>

using namespace urcm;

URCM_STAT(NumTraceChunks, "trace.chunks", "Trace chunks streamed");
URCM_STAT(NumTraceEvents, "trace.events", "Trace events streamed");
URCM_STAT(NumProducerStalls, "trace.producer-stalls",
          "Producer blocked on a full chunk queue");
URCM_STAT(NumConsumerStalls, "trace.consumer-stalls",
          "Consumer blocked on an empty chunk queue");

namespace {

/// Pass-through sink interposed ahead of the stream when a producer-side
/// tap is requested: the tap sees each chunk on the simulating thread,
/// then the chunk flows downstream unchanged.
class TapSink : public TraceSink {
public:
  TapSink(TraceSink &Next,
          const std::function<void(const TraceEvent *, size_t)> &Tap)
      : Next(Next), Tap(Tap) {}

  std::vector<TraceEvent> chunk(std::vector<TraceEvent> Chunk) override {
    Tap(Chunk.data(), Chunk.size());
    return Next.chunk(std::move(Chunk));
  }

private:
  TraceSink &Next;
  const std::function<void(const TraceEvent *, size_t)> &Tap;
};

} // namespace

SimResult urcm::streamTrace(
    SimConfig Config,
    const std::function<SimResult(const SimConfig &)> &Produce,
    const std::function<void(const TraceEvent *, size_t)> &Consume,
    size_t QueueDepth, uint64_t *EventCount,
    const std::function<void(const TraceEvent *, size_t)> &ProducerTap) {
  StreamedTrace Stream(QueueDepth);
  TapSink Tap(Stream, ProducerTap);
  Config.Sink = ProducerTap ? static_cast<TraceSink *>(&Tap) : &Stream;
  Config.RecordTrace = false;

  SimResult Result;
  std::exception_ptr ProducerError;
  std::thread Producer([&] {
    if (telemetry::enabled())
      telemetry::setThreadName("trace-producer");
    try {
      Result = Produce(Config);
    } catch (...) {
      ProducerError = std::current_exception();
    }
    // Close even on failure so the consumer drains and unblocks.
    Stream.producerDone();
  });

  std::exception_ptr ConsumerError;
  std::vector<TraceEvent> Chunk;
  while (Stream.next(Chunk)) {
    if (ConsumerError)
      continue; // Keep draining so the producer never deadlocks.
    try {
      Consume(Chunk.data(), Chunk.size());
    } catch (...) {
      ConsumerError = std::current_exception();
    }
  }
  Producer.join();
  if (telemetry::enabled()) {
    NumTraceChunks.add(Stream.chunkCount());
    NumTraceEvents.add(Stream.eventCount());
    NumProducerStalls.add(Stream.producerStalls());
    NumConsumerStalls.add(Stream.consumerStalls());
  }
  if (EventCount)
    *EventCount = Stream.eventCount();
  if (ProducerError)
    std::rethrow_exception(ProducerError);
  if (ConsumerError)
    std::rethrow_exception(ConsumerError);
  return Result;
}
