//===- Predecode.cpp - Execution-ready machine code ----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Predecode.h"

#include "urcm/support/Telemetry.h"

#include <cassert>
#include <cstdlib>

using namespace urcm;

namespace {

/// Register slot for an operand the opcode reads: must name a real
/// register (reading a garbage slot in the legacy interpreter would be
/// out-of-bounds UB, so valid programs always satisfy this).
uint16_t readSlot(uint32_t Reg) {
  assert(Reg < mreg::NumRegs && "operand register out of range");
  return static_cast<uint16_t>(Reg);
}

/// Register slot for a load/store base: mreg::None means "no base",
/// which the executor reads as the constant-zero slot.
uint16_t baseSlot(uint32_t Reg) {
  if (Reg == mreg::None)
    return static_cast<uint16_t>(preg::Zero);
  return readSlot(Reg);
}

POp binaryOp(MOpcode Op, bool UseImm) {
  switch (Op) {
#define URCM_BIN(M)                                                          \
  case MOpcode::M:                                                           \
    return UseImm ? POp::M##RI : POp::M##RR;
    URCM_BIN(Add)
    URCM_BIN(Sub)
    URCM_BIN(Mul)
    URCM_BIN(Div)
    URCM_BIN(Rem)
    URCM_BIN(And)
    URCM_BIN(Or)
    URCM_BIN(Xor)
    URCM_BIN(Shl)
    URCM_BIN(Shr)
    URCM_BIN(Slt)
    URCM_BIN(Sle)
    URCM_BIN(Sgt)
    URCM_BIN(Sge)
    URCM_BIN(Seq)
    URCM_BIN(Sne)
#undef URCM_BIN
  default:
    assert(false && "not a binary ALU opcode");
    return POp::Halt;
  }
}

} // namespace

PredecodedProgram urcm::predecode(const MachineProgram &Prog) {
  PredecodedProgram PP;
  PP.EntryIndex = Prog.EntryIndex;
  PP.StackTop = Prog.StackTop;
  PP.RunLen = computeRunLengths(Prog.Code);
  PP.Insts.reserve(Prog.Code.size());

  for (const MInst &I : Prog.Code) {
    PInst P;
    switch (I.Op) {
    case MOpcode::Add:
    case MOpcode::Sub:
    case MOpcode::Mul:
    case MOpcode::Div:
    case MOpcode::Rem:
    case MOpcode::And:
    case MOpcode::Or:
    case MOpcode::Xor:
    case MOpcode::Shl:
    case MOpcode::Shr:
    case MOpcode::Slt:
    case MOpcode::Sle:
    case MOpcode::Sgt:
    case MOpcode::Sge:
    case MOpcode::Seq:
    case MOpcode::Sne:
      P.Op = binaryOp(I.Op, I.UseImm);
      P.A = readSlot(I.Rd);
      P.B = readSlot(I.Rs1);
      if (I.UseImm)
        P.Imm = I.Imm;
      else
        P.C = readSlot(I.Rs2);
      break;
    case MOpcode::Neg:
    case MOpcode::Not:
    case MOpcode::Mov:
      P.Op = I.Op == MOpcode::Neg   ? POp::Neg
             : I.Op == MOpcode::Not ? POp::Not
                                    : POp::Mov;
      P.A = readSlot(I.Rd);
      P.B = readSlot(I.Rs1);
      break;
    case MOpcode::Li:
      P.Op = POp::Li;
      P.A = readSlot(I.Rd);
      P.Imm = I.Imm;
      break;
    case MOpcode::Ld:
      P.Op = POp::Ld;
      P.A = readSlot(I.Rd);
      P.B = baseSlot(I.Rs1);
      P.Imm = I.Imm;
      P.Mem = I.MemInfo;
      break;
    case MOpcode::St:
      P.Op = POp::St;
      P.B = baseSlot(I.Rs1);
      P.C = readSlot(I.Rs2);
      P.Imm = I.Imm;
      P.Mem = I.MemInfo;
      break;
    case MOpcode::Jmp:
      P.Op = POp::Jmp;
      P.Target = I.Target;
      break;
    case MOpcode::Bnz:
      P.Op = POp::Bnz;
      P.B = readSlot(I.Rs1);
      P.Target = I.Target;
      break;
    case MOpcode::Call:
      P.Op = POp::Call;
      P.Target = I.Target;
      break;
    case MOpcode::Ret:
      P.Op = I.CodeDeadHint ? POp::RetDead : POp::Ret;
      P.Target = I.Target;
      P.Imm = I.Imm;
      break;
    case MOpcode::Print:
      P.Op = POp::Print;
      P.B = readSlot(I.Rs1);
      break;
    case MOpcode::Halt:
      P.Op = POp::Halt;
      break;
    }
    PP.Insts.push_back(P);
  }
  return PP;
}

URCM_STAT(NumFuseCandidates, "sim.fuse.candidates",
          "Adjacent instruction windows matching a fusable pattern");
URCM_STAT(NumFuseFused, "sim.fuse.fused",
          "Pattern heads rewritten to superinstructions");

namespace {

/// URCM_NO_FUSE in the environment (set to anything but "0") disables
/// fusion globally, whatever SimConfig says — the escape hatch that
/// needs no rebuild and no driver flag.
bool fusionDisabledByEnv() {
  const char *Env = std::getenv("URCM_NO_FUSE");
  return Env && Env[0] && !(Env[0] == '0' && Env[1] == '\0');
}

} // namespace

FusionStats urcm::fusePredecoded(PredecodedProgram &PP) {
  FusionStats Stats;
  if (PP.fused() || fusionDisabledByEnv())
    return Stats;

  // Rewrite into a scratch copy while matching against the pristine
  // stream: a head already rewritten at i must still pattern-match as
  // the tail of a window starting at i-1 (overlap is allowed — tails
  // are executed from their original fields, never from their Op).
  std::vector<PInst> Fused = PP.Insts;
  const size_t N = PP.Insts.size();
  for (size_t Idx = 0; Idx + 1 < N; ++Idx) {
    const POp Op0 = PP.Insts[Idx].Op;
    const POp Op1 = PP.Insts[Idx + 1].Op;
    bool Matched = false;
    // Triples outrank pairs at the same head: one dispatch retires one
    // more member. The RunLen guard is structural belt-and-braces — no
    // listed head is a terminator, so a matched window always sits
    // inside one straight-line run.
#define URCM_FUSE_TRY3(Name, M0, M1, M2)                                     \
  if (!Matched && Idx + 2 < N && Op0 == POp::M0 && Op1 == POp::M1 &&         \
      PP.Insts[Idx + 2].Op == POp::M2) {                                     \
    Matched = true;                                                         \
    ++Stats.Candidates;                                                      \
    if (PP.RunLen[Idx] >= 3) {                                               \
      Fused[Idx].Op = POp::Fuse##Name;                                       \
      ++Stats.Fused;                                                         \
    }                                                                        \
  }
#define URCM_FUSE_SKIP2(Name, M0, M1)
    URCM_FUSED_OPS(URCM_FUSE_SKIP2, URCM_FUSE_TRY3)
#undef URCM_FUSE_SKIP2
#undef URCM_FUSE_TRY3
#define URCM_FUSE_TRY2(Name, M0, M1)                                         \
  if (!Matched && Op0 == POp::M0 && Op1 == POp::M1) {                        \
    Matched = true;                                                         \
    ++Stats.Candidates;                                                      \
    if (PP.RunLen[Idx] >= 2) {                                               \
      Fused[Idx].Op = POp::Fuse##Name;                                       \
      ++Stats.Fused;                                                         \
    }                                                                        \
  }
#define URCM_FUSE_SKIP3(Name, M0, M1, M2)
    URCM_FUSED_OPS(URCM_FUSE_TRY2, URCM_FUSE_SKIP3)
#undef URCM_FUSE_SKIP3
#undef URCM_FUSE_TRY2
    (void)Matched;
  }

  NumFuseCandidates.add(Stats.Candidates);
  NumFuseFused.add(Stats.Fused);
  if (Stats.Fused == 0)
    return Stats; // Nothing rewritten: keep the program trivially unfused.
  PP.Unfused = std::move(PP.Insts);
  PP.Insts = std::move(Fused);
  return Stats;
}
