//===- Predecode.cpp - Execution-ready machine code ----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Predecode.h"

#include <cassert>

using namespace urcm;

namespace {

/// Register slot for an operand the opcode reads: must name a real
/// register (reading a garbage slot in the legacy interpreter would be
/// out-of-bounds UB, so valid programs always satisfy this).
uint16_t readSlot(uint32_t Reg) {
  assert(Reg < mreg::NumRegs && "operand register out of range");
  return static_cast<uint16_t>(Reg);
}

/// Register slot for a load/store base: mreg::None means "no base",
/// which the executor reads as the constant-zero slot.
uint16_t baseSlot(uint32_t Reg) {
  if (Reg == mreg::None)
    return static_cast<uint16_t>(preg::Zero);
  return readSlot(Reg);
}

POp binaryOp(MOpcode Op, bool UseImm) {
  switch (Op) {
#define URCM_BIN(M)                                                          \
  case MOpcode::M:                                                           \
    return UseImm ? POp::M##RI : POp::M##RR;
    URCM_BIN(Add)
    URCM_BIN(Sub)
    URCM_BIN(Mul)
    URCM_BIN(Div)
    URCM_BIN(Rem)
    URCM_BIN(And)
    URCM_BIN(Or)
    URCM_BIN(Xor)
    URCM_BIN(Shl)
    URCM_BIN(Shr)
    URCM_BIN(Slt)
    URCM_BIN(Sle)
    URCM_BIN(Sgt)
    URCM_BIN(Sge)
    URCM_BIN(Seq)
    URCM_BIN(Sne)
#undef URCM_BIN
  default:
    assert(false && "not a binary ALU opcode");
    return POp::Halt;
  }
}

} // namespace

PredecodedProgram urcm::predecode(const MachineProgram &Prog) {
  PredecodedProgram PP;
  PP.EntryIndex = Prog.EntryIndex;
  PP.StackTop = Prog.StackTop;
  PP.RunLen = computeRunLengths(Prog.Code);
  PP.Insts.reserve(Prog.Code.size());

  for (const MInst &I : Prog.Code) {
    PInst P;
    switch (I.Op) {
    case MOpcode::Add:
    case MOpcode::Sub:
    case MOpcode::Mul:
    case MOpcode::Div:
    case MOpcode::Rem:
    case MOpcode::And:
    case MOpcode::Or:
    case MOpcode::Xor:
    case MOpcode::Shl:
    case MOpcode::Shr:
    case MOpcode::Slt:
    case MOpcode::Sle:
    case MOpcode::Sgt:
    case MOpcode::Sge:
    case MOpcode::Seq:
    case MOpcode::Sne:
      P.Op = binaryOp(I.Op, I.UseImm);
      P.A = readSlot(I.Rd);
      P.B = readSlot(I.Rs1);
      if (I.UseImm)
        P.Imm = I.Imm;
      else
        P.C = readSlot(I.Rs2);
      break;
    case MOpcode::Neg:
    case MOpcode::Not:
    case MOpcode::Mov:
      P.Op = I.Op == MOpcode::Neg   ? POp::Neg
             : I.Op == MOpcode::Not ? POp::Not
                                    : POp::Mov;
      P.A = readSlot(I.Rd);
      P.B = readSlot(I.Rs1);
      break;
    case MOpcode::Li:
      P.Op = POp::Li;
      P.A = readSlot(I.Rd);
      P.Imm = I.Imm;
      break;
    case MOpcode::Ld:
      P.Op = POp::Ld;
      P.A = readSlot(I.Rd);
      P.B = baseSlot(I.Rs1);
      P.Imm = I.Imm;
      P.Mem = I.MemInfo;
      break;
    case MOpcode::St:
      P.Op = POp::St;
      P.B = baseSlot(I.Rs1);
      P.C = readSlot(I.Rs2);
      P.Imm = I.Imm;
      P.Mem = I.MemInfo;
      break;
    case MOpcode::Jmp:
      P.Op = POp::Jmp;
      P.Target = I.Target;
      break;
    case MOpcode::Bnz:
      P.Op = POp::Bnz;
      P.B = readSlot(I.Rs1);
      P.Target = I.Target;
      break;
    case MOpcode::Call:
      P.Op = POp::Call;
      P.Target = I.Target;
      break;
    case MOpcode::Ret:
      P.Op = I.CodeDeadHint ? POp::RetDead : POp::Ret;
      P.Target = I.Target;
      P.Imm = I.Imm;
      break;
    case MOpcode::Print:
      P.Op = POp::Print;
      P.B = readSlot(I.Rs1);
      break;
    case MOpcode::Halt:
      P.Op = POp::Halt;
      break;
    }
    PP.Insts.push_back(P);
  }
  return PP;
}
