//===- CacheModel.cpp - Policy-generic cache replay ----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/CacheModel.h"

#include <cctype>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

using namespace urcm;

const char *urcm::cachePolicyName(CachePolicy Policy) {
  switch (Policy) {
  case CachePolicy::LRU:
    return "LRU";
  case CachePolicy::FIFO:
    return "FIFO";
  case CachePolicy::Random:
    return "Random";
  case CachePolicy::MIN:
    return "MIN";
  case CachePolicy::TreePLRU:
    return "TreePLRU";
  case CachePolicy::SRRIP:
    return "SRRIP";
  case CachePolicy::LivenessBypass:
    return "LivenessBypass";
  }
  return "?";
}

bool urcm::parseCachePolicy(const char *Spelling, CachePolicy &Out) {
  std::string Lower;
  for (const char *P = Spelling; *P; ++P)
    Lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*P))));
  struct Entry {
    const char *Name;
    CachePolicy Policy;
  };
  static const Entry Table[] = {
      {"lru", CachePolicy::LRU},
      {"fifo", CachePolicy::FIFO},
      {"random", CachePolicy::Random},
      {"min", CachePolicy::MIN},
      {"plru", CachePolicy::TreePLRU},
      {"treeplru", CachePolicy::TreePLRU},
      {"srrip", CachePolicy::SRRIP},
      {"bypass", CachePolicy::LivenessBypass},
      {"livenessbypass", CachePolicy::LivenessBypass},
  };
  for (const Entry &E : Table)
    if (Lower == E.Name) {
      Out = E.Policy;
      return true;
    }
  return false;
}

namespace {
constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();
} // namespace

std::shared_ptr<const std::vector<uint64_t>>
urcm::computeNextLineUses(const std::vector<TraceEvent> &Trace,
                          uint32_t LineWords) {
  CacheConfig Geo;
  Geo.LineWords = LineWords;
  CacheGeometry G(Geo);
  auto Next = std::make_shared<std::vector<uint64_t>>(Trace.size(), Never);
  std::unordered_map<uint64_t, uint64_t> NextOfLine;
  for (uint64_t Index = Trace.size(); Index-- > 0;) {
    const TraceEvent &E = Trace[Index];
    if (E.Info.Bypass)
      continue;
    uint64_t LA = G.lineAddr(E.Addr);
    auto It = NextOfLine.find(LA);
    (*Next)[Index] = It == NextOfLine.end() ? Never : It->second;
    NextOfLine[LA] = Index;
  }
  return Next;
}

CacheStats urcm::replayTrace(const std::vector<TraceEvent> &Trace,
                             const CacheConfig &Config,
                             CachePolicy Policy) {
  std::shared_ptr<const std::vector<uint64_t>> NextUses;
  if (Policy == CachePolicy::MIN)
    NextUses = computeNextLineUses(Trace, Config.LineWords);
  CacheModel R(Config, Policy, std::move(NextUses));
  R.feed(Trace.data(), Trace.size(), 0);
  return R.finish();
}
