//===- TraceSim.cpp - Trace-driven cache replay --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/TraceSim.h"

#include <limits>
#include <unordered_map>

using namespace urcm;

const char *urcm::tracePolicyName(TracePolicy Policy) {
  switch (Policy) {
  case TracePolicy::LRU:
    return "LRU";
  case TracePolicy::FIFO:
    return "FIFO";
  case TracePolicy::Random:
    return "Random";
  case TracePolicy::MIN:
    return "MIN";
  }
  return "?";
}

TracePolicy urcm::tracePolicyFor(ReplacementPolicy Policy) {
  switch (Policy) {
  case ReplacementPolicy::LRU:
    return TracePolicy::LRU;
  case ReplacementPolicy::FIFO:
    return TracePolicy::FIFO;
  case ReplacementPolicy::Random:
    return TracePolicy::Random;
  }
  return TracePolicy::LRU;
}

namespace {
constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();
} // namespace

std::shared_ptr<const std::vector<uint64_t>>
urcm::computeNextLineUses(const std::vector<TraceEvent> &Trace,
                          uint32_t LineWords) {
  CacheConfig Geo;
  Geo.LineWords = LineWords;
  CacheGeometry G(Geo);
  auto Next = std::make_shared<std::vector<uint64_t>>(Trace.size(), Never);
  std::unordered_map<uint64_t, uint64_t> NextOfLine;
  for (uint64_t Index = Trace.size(); Index-- > 0;) {
    const TraceEvent &E = Trace[Index];
    if (E.Info.Bypass)
      continue;
    uint64_t LA = G.lineAddr(E.Addr);
    auto It = NextOfLine.find(LA);
    (*Next)[Index] = It == NextOfLine.end() ? Never : It->second;
    NextOfLine[LA] = Index;
  }
  return Next;
}

CacheStats urcm::replayTrace(const std::vector<TraceEvent> &Trace,
                             const CacheConfig &Config,
                             TracePolicy Policy) {
  std::shared_ptr<const std::vector<uint64_t>> NextUses;
  if (Policy == TracePolicy::MIN)
    NextUses = computeNextLineUses(Trace, Config.LineWords);
  TraceReplayer R(Config, Policy, std::move(NextUses));
  for (uint64_t Index = 0; Index != Trace.size(); ++Index)
    R.step(Trace[Index], Index);
  return R.finish();
}
