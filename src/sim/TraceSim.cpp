//===- TraceSim.cpp - Trace-driven cache replay --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/TraceSim.h"

#include <cassert>
#include <limits>
#include <unordered_map>

using namespace urcm;

const char *urcm::tracePolicyName(TracePolicy Policy) {
  switch (Policy) {
  case TracePolicy::LRU:
    return "LRU";
  case TracePolicy::FIFO:
    return "FIFO";
  case TracePolicy::Random:
    return "Random";
  case TracePolicy::MIN:
    return "MIN";
  }
  return "?";
}

namespace {

constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();

struct ReplayLine {
  bool Valid = false;
  bool Dirty = false;
  uint64_t Tag = 0;
  uint64_t LastUsed = 0;
  uint64_t InsertedAt = 0;
  uint64_t NextUse = Never; // For MIN.
};

class Replayer {
public:
  Replayer(const std::vector<TraceEvent> &Trace, const CacheConfig &Config,
           TracePolicy Policy)
      : Trace(Trace), Config(Config), Policy(Policy), Rng(Config.Seed),
        Lines(Config.NumLines) {
    assert(Config.Assoc > 0 && Config.NumLines % Config.Assoc == 0 &&
           "associativity must divide the line count");
    if (Policy == TracePolicy::MIN)
      computeNextUses();
  }

  CacheStats run() {
    for (uint64_t Index = 0; Index != Trace.size(); ++Index)
      step(Index);
    // End of program: count remaining dirty lines as flush write-backs.
    for (ReplayLine &L : Lines)
      if (L.Valid && L.Dirty)
        Stats.FlushWriteBackWords += Config.LineWords;
    return Stats;
  }

private:
  uint32_t numSets() const { return Config.NumLines / Config.Assoc; }
  uint64_t lineAddr(uint64_t Addr) const { return Addr / Config.LineWords; }

  /// For MIN: NextUseAfter[i] = index of the next through-cache access to
  /// the same line after event i (Never if none).
  void computeNextUses() {
    NextUseAfter.assign(Trace.size(), Never);
    std::unordered_map<uint64_t, uint64_t> NextOfLine;
    for (uint64_t Index = Trace.size(); Index-- > 0;) {
      const TraceEvent &E = Trace[Index];
      if (E.Info.Bypass)
        continue;
      uint64_t LA = lineAddr(E.Addr);
      auto It = NextOfLine.find(LA);
      NextUseAfter[Index] = It == NextOfLine.end() ? Never : It->second;
      NextOfLine[LA] = Index;
    }
  }

  ReplayLine *find(uint64_t LA) {
    uint32_t Set = static_cast<uint32_t>(LA % numSets());
    for (uint32_t Way = 0; Way != Config.Assoc; ++Way) {
      ReplayLine &L = Lines[static_cast<size_t>(Set) * Config.Assoc + Way];
      if (L.Valid && L.Tag == LA)
        return &L;
    }
    return nullptr;
  }

  ReplayLine *chooseVictim(uint32_t Set) {
    ReplayLine *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
    for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
      if (!Base[Way].Valid)
        return &Base[Way];
    switch (Policy) {
    case TracePolicy::LRU: {
      ReplayLine *Victim = Base;
      for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
        if (Base[Way].LastUsed < Victim->LastUsed)
          Victim = &Base[Way];
      return Victim;
    }
    case TracePolicy::FIFO: {
      ReplayLine *Victim = Base;
      for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
        if (Base[Way].InsertedAt < Victim->InsertedAt)
          Victim = &Base[Way];
      return Victim;
    }
    case TracePolicy::Random:
      return &Base[Rng.nextBelow(Config.Assoc)];
    case TracePolicy::MIN: {
      // Belady: evict the line whose next use is farthest in the future.
      ReplayLine *Victim = Base;
      for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
        if (Base[Way].NextUse > Victim->NextUse)
          Victim = &Base[Way];
      return Victim;
    }
    }
    return Base;
  }

  void evict(ReplayLine &L) {
    if (L.Dirty) {
      ++Stats.WriteBacks;
      Stats.WriteBackWords += Config.LineWords;
    }
    ++Stats.Evictions;
    L.Valid = false;
    L.Dirty = false;
  }

  void freeLine(ReplayLine &L) {
    ++Stats.DeadFrees;
    if (Config.LineWords == 1) {
      if (L.Dirty)
        ++Stats.DeadWriteBacksAvoided;
      L.Valid = false;
      L.Dirty = false;
      return;
    }
    L.LastUsed = 0;
    L.InsertedAt = 0;
    L.NextUse = Never;
  }

  void step(uint64_t Index) {
    const TraceEvent &E = Trace[Index];
    uint64_t LA = lineAddr(E.Addr);

    if (E.Info.Bypass) {
      if (!E.IsWrite) {
        if (ReplayLine *L = find(LA)) {
          // Migration: dirty lines are written back first (see
          // DataCache::read for the soundness argument).
          ++Stats.BypassHitMigrations;
          if (Config.LineWords == 1) {
            ++Stats.DeadFrees;
            if (L->Dirty)
              evict(*L);
            L->Valid = false;
            L->Dirty = false;
          } else {
            evict(*L);
          }
        } else {
          ++Stats.BypassReads;
        }
      } else {
        ++Stats.BypassWrites;
      }
      return;
    }

    if (E.IsWrite)
      ++Stats.Writes;
    else
      ++Stats.Reads;

    if (E.IsWrite && Config.Write == WritePolicy::WriteThrough) {
      // Write-through / no-write-allocate (see DataCache::write).
      ++Stats.WriteThroughWords;
      if (ReplayLine *L = find(LA)) {
        ++Stats.WriteHits;
        L->LastUsed = ++Tick;
        if (Policy == TracePolicy::MIN)
          L->NextUse = NextUseAfter[Index];
        if (E.Info.LastRef)
          freeLine(*L);
      }
      return;
    }

    ReplayLine *L = find(LA);
    if (L) {
      if (E.IsWrite)
        ++Stats.WriteHits;
      else
        ++Stats.ReadHits;
      L->LastUsed = ++Tick;
    } else {
      uint32_t Set = static_cast<uint32_t>(LA % numSets());
      L = chooseVictim(Set);
      if (L->Valid)
        evict(*L);
      L->Valid = true;
      L->Dirty = false;
      L->Tag = LA;
      L->InsertedAt = ++Tick;
      L->LastUsed = Tick;
      bool FetchWords = !E.IsWrite || Config.LineWords > 1;
      ++Stats.Fills;
      if (FetchWords)
        Stats.FillWords += Config.LineWords;
    }

    if (Policy == TracePolicy::MIN)
      L->NextUse = NextUseAfter[Index];
    if (E.IsWrite)
      L->Dirty = true;
    if (E.Info.LastRef)
      freeLine(*L);
  }

  const std::vector<TraceEvent> &Trace;
  CacheConfig Config;
  TracePolicy Policy;
  SplitMix64 Rng;
  std::vector<ReplayLine> Lines;
  std::vector<uint64_t> NextUseAfter;
  CacheStats Stats;
  uint64_t Tick = 0;
};

} // namespace

CacheStats urcm::replayTrace(const std::vector<TraceEvent> &Trace,
                             const CacheConfig &Config,
                             TracePolicy Policy) {
  Replayer R(Trace, Config, Policy);
  return R.run();
}
