//===- SweepEngine.cpp - Compile-once/replay-many sweeps -----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The stack-distance fast path implemented here extends Mattson's
// one-pass algorithm [Mattson et al., IBM Sys. J. 1970] to the paper's
// hint semantics. The classic algorithm exploits LRU inclusion: lines
// ordered by recency form a stack, an access at stack depth d hits in
// every fully-associative LRU cache with more than d lines and misses in
// the rest, so one walk yields hit counts for all sizes.
//
// Dead-tag frees and bypass migrations break the textbook version: a
// freed line leaves a free slot in every cache that held it, and caches
// of different sizes disagree about which lines they hold. Deleting the
// freed line from the stack is wrong — it would promote every deeper
// line by one position, turning later misses into phantom hits for
// intermediate sizes. Instead a freed line's stack slot is kept as a
// *hole*: depth arithmetic still counts it, and the number of holes
// among the top S entries is exactly the number of free slots in the
// size-S cache. The update rules (derived positionally, asserted
// bit-identical to TraceReplayer by tests/sweepengine_test.cpp):
//
//  * free (dead tag / bypass migration): the line's entry becomes a
//    hole in place;
//  * miss everywhere: the new line pushes on top and consumes the
//    topmost hole, if any — sizes that see the hole fill a free slot,
//    sizes above the hole evict their own per-size LRU victim (the
//    entry at stack position S, which simply slides out of the top-S
//    window);
//  * hit at depth d with a hole above: the line moves to the top and
//    the topmost hole moves down into the vacated slot, recording that
//    every size small enough to miss but deep enough to contain the
//    hole consumed its free slot, while hitting sizes keep theirs.
//
// Dirtiness is also size-dependent (a size that missed refetches the
// line clean), captured by a per-line DirtyMin = smallest size whose
// copy is dirty: a write sets it to 1, a read at depth d raises it to
// max(DirtyMin, d+1) because sizes <= d refill clean.
//
// Two Fenwick trees over the timestamp domain (all entries / holes
// only) give O(log n) depth, topmost-hole and per-size victim queries.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/SweepEngine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

using namespace urcm;

namespace {

/// computeNextLineUses for an IgnoreHints replay: bypassed events count
/// as through-cache accesses there, so the next-use index must include
/// them.
std::shared_ptr<const std::vector<uint64_t>>
computeNextLineUsesUnhinted(const std::vector<TraceEvent> &Trace,
                            uint32_t LineWords) {
  CacheConfig Geo;
  Geo.LineWords = LineWords;
  CacheGeometry G(Geo);
  auto Next = std::make_shared<std::vector<uint64_t>>(
      Trace.size(), std::numeric_limits<uint64_t>::max());
  std::unordered_map<uint64_t, uint64_t> NextOfLine;
  for (uint64_t Index = Trace.size(); Index-- > 0;) {
    uint64_t LA = G.lineAddr(Trace[Index].Addr);
    auto It = NextOfLine.find(LA);
    if (It != NextOfLine.end())
      (*Next)[Index] = It->second;
    NextOfLine[LA] = Index;
  }
  return Next;
}

/// True if \p P can be served by the specialized two-way LRU kernel
/// below.
bool lruTwoWayEligible(const SweepPoint &P) {
  return P.Policy == TracePolicy::LRU &&
         P.Config.Write == WritePolicy::WriteBack &&
         P.Config.LineWords == 1 && P.Config.Assoc == 2 &&
         P.Config.NumLines >= 2 &&
         (P.Config.NumLines & (P.Config.NumLines - 1)) == 0;
}

/// Specialized lock-step replay for two-way LRU write-back caches with
/// one-word lines and power-of-two line counts — the paper's preferred
/// data-cache shape and by far the hottest sweep configuration.
/// Counters are bit-identical to TraceReplayer; the win is the state
/// encoding: each set is a two-entry move-to-front list of tag words
/// (bit 63 = dirty, all-ones = invalid), so the common case — a hit on
/// the most recent way — is one load and one compare, with no tick
/// bookkeeping (for two ways, position *is* recency).
///
/// Invariants: among valid ways of a set, slot 0 is the more recently
/// used; invalid ways can sit in either slot (an access always leaves
/// the touched line in slot 0, and dead-tag/bypass frees invalidate in
/// place). Victim choice matches DataCache::chooseVictim: an invalid
/// way first, else the LRU way (slot 1).
std::vector<CacheStats>
replayLRUTwoWay(const std::vector<TraceEvent> &Trace,
                const std::vector<SweepPoint> &Points) {
  constexpr uint64_t DirtyBit = uint64_t(1) << 63;
  constexpr uint64_t TagMask = ~DirtyBit;
  constexpr uint64_t Invalid = ~uint64_t(0);

  struct Way2Cache {
    uint64_t SetMask;
    bool Hinted;
    std::vector<uint64_t> Tags;
    CacheStats St;
  };
  std::vector<Way2Cache> Caches;
  Caches.reserve(Points.size());
  for (const SweepPoint &P : Points) {
    assert(lruTwoWayEligible(P));
    Caches.push_back({uint64_t(P.Config.NumLines / 2) - 1,
                      !P.IgnoreHints,
                      std::vector<uint64_t>(P.Config.NumLines, Invalid),
                      CacheStats()});
  }

  for (const TraceEvent &E : Trace) {
    const uint64_t A = E.Addr;
    const bool W = E.IsWrite;
    const bool Bypass = E.Info.Bypass;
    const bool LastRef = E.Info.LastRef;
    for (Way2Cache &C : Caches) {
      uint64_t *P = C.Tags.data() + ((A & C.SetMask) << 1);
      if (__builtin_expect(!(Bypass & C.Hinted), 1)) {
        uint64_t T0 = P[0];
        if (W)
          ++C.St.Writes;
        else
          ++C.St.Reads;
        if ((T0 & TagMask) == A) {
          if (W) {
            ++C.St.WriteHits;
            P[0] = T0 | DirtyBit;
          } else {
            ++C.St.ReadHits;
          }
        } else if (uint64_t T1 = P[1]; (T1 & TagMask) == A) {
          if (W) {
            ++C.St.WriteHits;
            T1 |= DirtyBit;
          } else {
            ++C.St.ReadHits;
          }
          P[1] = T0;
          P[0] = T1;
        } else {
          // Miss. One-word write-allocate skips the fetch (the store
          // overwrites the whole line).
          ++C.St.Fills;
          if (!W)
            ++C.St.FillWords;
          uint64_t NewTag = W ? A | DirtyBit : A;
          if (T0 == Invalid) {
            P[0] = NewTag;
          } else {
            if (T1 != Invalid) {
              ++C.St.Evictions;
              if (T1 & DirtyBit) {
                ++C.St.WriteBacks;
                ++C.St.WriteBackWords;
              }
            }
            P[1] = T0;
            P[0] = NewTag;
          }
        }
        if (LastRef & C.Hinted) {
          // The accessed line sits in slot 0 after every path above.
          ++C.St.DeadFrees;
          if (P[0] & DirtyBit)
            ++C.St.DeadWriteBacksAvoided;
          P[0] = Invalid;
        }
      } else if (W) {
        ++C.St.BypassWrites;
      } else {
        // Bypass read: a resident line migrates to the register file
        // (dirty lines write back first) and frees its slot.
        uint64_t T0 = P[0], T1 = P[1];
        uint64_t *Slot = (T0 & TagMask) == A   ? &P[0]
                         : (T1 & TagMask) == A ? &P[1]
                                               : nullptr;
        if (Slot) {
          ++C.St.BypassHitMigrations;
          ++C.St.DeadFrees;
          if (*Slot & DirtyBit) {
            ++C.St.WriteBacks;
            ++C.St.WriteBackWords;
            ++C.St.Evictions;
          }
          *Slot = Invalid;
        } else {
          ++C.St.BypassReads;
        }
      }
    }
  }

  std::vector<CacheStats> Out;
  Out.reserve(Caches.size());
  for (Way2Cache &C : Caches) {
    for (uint64_t T : C.Tags)
      if (T != Invalid && (T & DirtyBit))
        ++C.St.FlushWriteBackWords;
    Out.push_back(C.St);
  }
  return Out;
}

/// The general lock-step walk: one TraceReplayer per point.
std::vector<CacheStats>
replayGenericMulti(const std::vector<TraceEvent> &Trace,
                   const std::vector<SweepPoint> &Points) {
  // MIN points with the same line size and hint view share one
  // next-use index.
  std::map<std::pair<uint32_t, bool>,
           std::shared_ptr<const std::vector<uint64_t>>>
      NextUses;
  std::vector<TraceReplayer> Replayers;
  Replayers.reserve(Points.size());
  bool AnyHinted = false;
  bool AnyUnhinted = false;
  for (const SweepPoint &P : Points) {
    (P.IgnoreHints ? AnyUnhinted : AnyHinted) = true;
    std::shared_ptr<const std::vector<uint64_t>> Next;
    if (P.Policy == TracePolicy::MIN) {
      auto &Slot = NextUses[{P.Config.LineWords, P.IgnoreHints}];
      if (!Slot)
        Slot = P.IgnoreHints
                   ? computeNextLineUsesUnhinted(Trace, P.Config.LineWords)
                   : computeNextLineUses(Trace, P.Config.LineWords);
      Next = Slot;
    }
    Replayers.emplace_back(P.Config, P.Policy, std::move(Next));
  }
  // One walk of the (large) trace; every configuration advances in
  // lock-step. The replayers are mutually independent, so the counters
  // equal per-point replayTrace calls. IgnoreHints points see the event
  // with its hint bits cleared (stripped once per event, not per
  // point).
  const size_t N = Points.size();
  for (uint64_t Index = 0; Index != Trace.size(); ++Index) {
    const TraceEvent &E = Trace[Index];
    TraceEvent Stripped;
    if (AnyUnhinted) {
      Stripped = E;
      Stripped.Info.Bypass = false;
      Stripped.Info.LastRef = false;
    }
    if (!AnyUnhinted) {
      for (TraceReplayer &R : Replayers)
        R.step(E, Index);
    } else if (!AnyHinted) {
      for (TraceReplayer &R : Replayers)
        R.step(Stripped, Index);
    } else {
      for (size_t P = 0; P != N; ++P)
        Replayers[P].step(Points[P].IgnoreHints ? Stripped : E, Index);
    }
  }
  std::vector<CacheStats> Out;
  Out.reserve(Replayers.size());
  for (TraceReplayer &R : Replayers)
    Out.push_back(R.finish());
  return Out;
}

} // namespace

std::vector<CacheStats>
urcm::replayTraceMulti(const std::vector<TraceEvent> &Trace,
                       const std::vector<SweepPoint> &Points) {
  // Partition into the specialized two-way LRU kernel and the general
  // replayer. The two groups each walk the trace once; streaming the
  // trace twice is far cheaper than running every point through the
  // general per-event machinery.
  std::vector<size_t> FastIdx, SlowIdx;
  for (size_t I = 0; I != Points.size(); ++I)
    (lruTwoWayEligible(Points[I]) ? FastIdx : SlowIdx).push_back(I);
  if (SlowIdx.empty() && FastIdx.empty())
    return {};
  if (FastIdx.empty())
    return replayGenericMulti(Trace, Points);
  if (SlowIdx.empty())
    return replayLRUTwoWay(Trace, Points);
  std::vector<CacheStats> Out(Points.size());
  std::vector<SweepPoint> Fast, Slow;
  for (size_t I : FastIdx)
    Fast.push_back(Points[I]);
  for (size_t I : SlowIdx)
    Slow.push_back(Points[I]);
  std::vector<CacheStats> FastOut = replayLRUTwoWay(Trace, Fast);
  std::vector<CacheStats> SlowOut = replayGenericMulti(Trace, Slow);
  for (size_t I = 0; I != FastIdx.size(); ++I)
    Out[FastIdx[I]] = FastOut[I];
  for (size_t I = 0; I != SlowIdx.size(); ++I)
    Out[SlowIdx[I]] = SlowOut[I];
  return Out;
}

bool urcm::stackDistanceEligible(const SweepPoint &Point) {
  return Point.Policy == TracePolicy::LRU &&
         Point.Config.Write == WritePolicy::WriteBack &&
         Point.Config.LineWords == 1 &&
         Point.Config.Assoc == Point.Config.NumLines &&
         Point.Config.NumLines > 0;
}

namespace {

constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();

/// Fenwick tree of 0/1 flags over the 1-based timestamp domain.
class BitTree {
public:
  explicit BitTree(uint64_t N) : Tree(N + 1, 0) {
    while ((uint64_t(1) << (LogN + 1)) <= N)
      ++LogN;
  }

  uint64_t total() const { return Total; }

  void set(uint64_t I) {
    ++Total;
    for (; I < Tree.size(); I += I & (~I + 1))
      ++Tree[I];
  }

  void clear(uint64_t I) {
    --Total;
    for (; I < Tree.size(); I += I & (~I + 1))
      --Tree[I];
  }

  /// Number of set flags at positions <= I.
  uint64_t prefix(uint64_t I) const {
    uint64_t Sum = 0;
    for (; I > 0; I -= I & (~I + 1))
      Sum += Tree[I];
    return Sum;
  }

  /// Smallest position whose prefix is >= K (the K-th set flag);
  /// requires 1 <= K <= total().
  uint64_t select(uint64_t K) const {
    uint64_t Pos = 0;
    for (uint32_t Bit = LogN + 1; Bit-- > 0;) {
      uint64_t Next = Pos + (uint64_t(1) << Bit);
      if (Next < Tree.size() && Tree[Next] < K) {
        Pos = Next;
        K -= Tree[Next];
      }
    }
    return Pos + 1;
  }

private:
  std::vector<uint32_t> Tree;
  uint64_t Total = 0;
  uint32_t LogN = 0;
};

} // namespace

std::vector<CacheStats>
urcm::sweepLRUStackDistance(const std::vector<TraceEvent> &Trace,
                            const std::vector<uint32_t> &NumLines,
                            bool IgnoreHints) {
  const size_t NumSizes = NumLines.size();
  std::vector<CacheStats> Stats(NumSizes);
  if (NumSizes == 0)
    return Stats;

  /// DirtyMin = smallest tracked-or-not capacity whose copy of the line
  /// is dirty (Never when clean in every size).
  struct LineState {
    uint64_t Ts;
    uint64_t DirtyMin;
  };

  // Each event consumes at most one fresh timestamp.
  const uint64_t Domain = Trace.size() + 1;
  BitTree All(Domain);   // Valid lines and holes.
  BitTree Holes(Domain); // Holes only.
  std::unordered_map<uint64_t, LineState> Lines;
  std::vector<uint64_t> AddrOfTs(Domain + 1, 0);
  uint64_t NextTs = 0;

  // 0-based stack depth: number of entries more recent than Ts.
  auto depthOf = [&](uint64_t Ts) { return All.total() - All.prefix(Ts); };

  for (const TraceEvent &E : Trace) {
    const uint64_t LA = E.Addr; // One-word lines: address == line address.
    const bool Bypass = !IgnoreHints && E.Info.Bypass;
    const bool LastRef = !IgnoreHints && E.Info.LastRef;
    auto It = Lines.find(LA);

    if (Bypass) {
      if (E.IsWrite) {
        // UmAm_STORE: straight to memory in every size.
        for (CacheStats &St : Stats)
          ++St.BypassWrites;
        continue;
      }
      if (It == Lines.end()) {
        for (CacheStats &St : Stats)
          ++St.BypassReads;
        continue;
      }
      // UmAm_LOAD: sizes holding the line migrate-and-free it (dirty
      // copies are written back first, see DataCache::read); the rest
      // read memory directly.
      const uint64_t D = depthOf(It->second.Ts);
      const uint64_t DirtyMin = It->second.DirtyMin;
      for (size_t K = 0; K != NumSizes; ++K) {
        CacheStats &St = Stats[K];
        const uint64_t S = NumLines[K];
        if (S > D) {
          ++St.BypassHitMigrations;
          ++St.DeadFrees;
          if (DirtyMin <= S) {
            ++St.WriteBacks;
            ++St.WriteBackWords;
            ++St.Evictions;
          }
        } else {
          ++St.BypassReads;
        }
      }
      // The entry becomes a hole in place: every size that held the
      // line gains a free slot at its stack position.
      Holes.set(It->second.Ts);
      Lines.erase(It);
      continue;
    }

    // Through-cache access. All queries run against the pre-access
    // stack; mutations follow after the stats loop.
    const uint64_t D = It == Lines.end() ? Never : depthOf(It->second.Ts);
    const uint64_t TotalBefore = All.total();
    uint64_t HoleTs = 0;
    uint64_t PHole = Never; // 0-based depth of the topmost hole.
    if (Holes.total() > 0) {
      HoleTs = Holes.select(Holes.total());
      PHole = depthOf(HoleTs);
    }
    // Sizes up to EvictMax miss with a full window and no hole in it:
    // they evict their own LRU victim, the entry at stack position S.
    const uint64_t EvictMax = std::min({D, PHole, TotalBefore});

    for (size_t K = 0; K != NumSizes; ++K) {
      CacheStats &St = Stats[K];
      const uint64_t S = NumLines[K];
      if (E.IsWrite)
        ++St.Writes;
      else
        ++St.Reads;
      if (D != Never && S > D) {
        if (E.IsWrite)
          ++St.WriteHits;
        else
          ++St.ReadHits;
        continue;
      }
      ++St.Fills;
      if (!E.IsWrite)
        ++St.FillWords; // One-word write-allocate skips the fetch.
      if (S <= EvictMax) {
        const uint64_t VictimTs = All.select(TotalBefore - S + 1);
        ++St.Evictions;
        if (Lines.find(AddrOfTs[VictimTs])->second.DirtyMin <= S) {
          ++St.WriteBacks;
          ++St.WriteBackWords;
        }
      }
    }

    // Stack update.
    const uint64_t NewTs = ++NextTs;
    AddrOfTs[NewTs] = LA;
    if (It != Lines.end()) {
      const uint64_t OldTs = It->second.Ts;
      All.clear(OldTs);
      if (PHole != Never && HoleTs > OldTs) {
        // The topmost hole moves down into the vacated slot: sizes in
        // (PHole, D] missed and consumed their free slot; hitting
        // sizes keep theirs.
        Holes.clear(HoleTs);
        All.clear(HoleTs);
        Holes.set(OldTs);
        All.set(OldTs);
      }
      It->second.Ts = NewTs;
      if (E.IsWrite)
        It->second.DirtyMin = 1;
      else if (It->second.DirtyMin != Never)
        It->second.DirtyMin = std::max(It->second.DirtyMin, D + 1);
    } else {
      // Miss everywhere: the topmost hole (if any) is consumed.
      if (PHole != Never) {
        Holes.clear(HoleTs);
        All.clear(HoleTs);
      }
      Lines.emplace(LA, LineState{NewTs, E.IsWrite ? 1 : Never});
    }
    All.set(NewTs);

    if (LastRef) {
      // The line (now on top, resident in every size) is freed; dirty
      // copies are dropped without write-back.
      const LineState &LS = Lines.find(LA)->second;
      for (size_t K = 0; K != NumSizes; ++K) {
        ++Stats[K].DeadFrees;
        if (LS.DirtyMin <= NumLines[K])
          ++Stats[K].DeadWriteBacksAvoided;
      }
      Holes.set(NewTs);
      Lines.erase(LA);
    }
  }

  // End of program: flush the remaining dirty lines of every size.
  for (const auto &[Addr, LS] : Lines) {
    if (LS.DirtyMin == Never)
      continue;
    const uint64_t P = depthOf(LS.Ts);
    for (size_t K = 0; K != NumSizes; ++K)
      if (NumLines[K] > P && LS.DirtyMin <= NumLines[K])
        ++Stats[K].FlushWriteBackWords;
  }
  return Stats;
}

std::vector<CacheStats>
urcm::replaySweepPoints(const std::vector<TraceEvent> &Trace,
                        const std::vector<SweepPoint> &Points) {
  if (!Points.empty() &&
      std::all_of(Points.begin(), Points.end(), stackDistanceEligible)) {
    // One stack walk per hint view (the walk itself covers all sizes).
    std::vector<CacheStats> Out(Points.size());
    for (bool IgnoreHints : {false, true}) {
      std::vector<uint32_t> Sizes;
      std::vector<size_t> Index;
      for (size_t P = 0; P != Points.size(); ++P) {
        if (Points[P].IgnoreHints == IgnoreHints) {
          Sizes.push_back(Points[P].Config.NumLines);
          Index.push_back(P);
        }
      }
      if (Sizes.empty())
        continue;
      std::vector<CacheStats> Part =
          sweepLRUStackDistance(Trace, Sizes, IgnoreHints);
      for (size_t I = 0; I != Index.size(); ++I)
        Out[Index[I]] = Part[I];
    }
    return Out;
  }
  return replayTraceMulti(Trace, Points);
}

SweepEngine &SweepEngine::global() {
  static SweepEngine Engine;
  return Engine;
}

void SweepEngine::schedule(const std::string &Key,
                           const std::string &HintGroup,
                           const SimConfig &Base,
                           std::vector<SweepPoint> Points, Producer Run) {
  std::lock_guard<std::mutex> Lock(M);
  auto [It, Inserted] = Experiments.try_emplace(Key);
  if (!Inserted)
    return;
  Experiment &E = It->second;
  E.HintGroup = HintGroup;
  E.Base = Base;
  E.Points = std::move(Points);
  E.Run = std::move(Run);
}

void SweepEngine::run() {
  // Snapshot the pending set; schedule() must not be called while run()
  // is in flight.
  std::vector<Experiment *> Pending;
  {
    std::lock_guard<std::mutex> Lock(M);
    for (auto &[Key, E] : Experiments)
      if (!E.Done)
        Pending.push_back(&E);
  }

  Pool->parallelFor(Pending.size(), [&](size_t I) {
    Experiment &E = *Pending[I];
    SimConfig Config = E.Base;
    Config.RecordTrace = true;
    {
      std::lock_guard<std::mutex> Lock(M);
      auto It = Hints.find(E.HintGroup);
      if (It != Hints.end())
        Config.TraceSizeHint = It->second;
    }
    E.Result = E.Run(Config);
    if (E.Result.ok()) {
      {
        std::lock_guard<std::mutex> Lock(M);
        uint64_t &Hint = Hints[E.HintGroup];
        Hint = std::max<uint64_t>(Hint, E.Result.Trace.size());
      }
      // A point matching the base run's own cache configuration reuses
      // the base counters (replay is bit-identical, so this is pure
      // reuse); everything else replays in a single pass.
      E.Stats.resize(E.Points.size());
      std::vector<SweepPoint> Rest;
      std::vector<size_t> RestIndex;
      for (size_t P = 0; P != E.Points.size(); ++P) {
        const SweepPoint &Pt = E.Points[P];
        if (!Pt.IgnoreHints && Pt.Config == Config.Cache &&
            Pt.Policy == tracePolicyFor(Config.Cache.Policy)) {
          E.Stats[P] = E.Result.Cache;
        } else {
          Rest.push_back(Pt);
          RestIndex.push_back(P);
        }
      }
      if (!Rest.empty()) {
        std::vector<CacheStats> Replayed =
            replaySweepPoints(E.Result.Trace, Rest);
        for (size_t R = 0; R != Rest.size(); ++R)
          E.Stats[RestIndex[R]] = Replayed[R];
      }
    }
    // Traces run to hundreds of MB; drop this one before the next
    // experiment starts.
    E.Result.Trace.clear();
    E.Result.Trace.shrink_to_fit();
    std::lock_guard<std::mutex> Lock(M);
    E.Done = true;
  });
}

const SweepEngine::Experiment &
SweepEngine::finished(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Experiments.find(Key);
  assert(It != Experiments.end() && It->second.Done &&
         "experiment was not scheduled/run");
  return It->second;
}

bool SweepEngine::done(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Experiments.find(Key);
  return It != Experiments.end() && It->second.Done;
}

const SimResult &SweepEngine::base(const std::string &Key) const {
  return finished(Key).Result;
}

const CacheStats &SweepEngine::point(const std::string &Key,
                                     size_t Index) const {
  const Experiment &E = finished(Key);
  assert(Index < E.Stats.size() && "sweep point index out of range");
  return E.Stats[Index];
}
