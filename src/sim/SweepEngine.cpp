//===- SweepEngine.cpp - Compile-once/replay-many sweeps -----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The stack-distance fast path implemented here extends Mattson's
// one-pass algorithm [Mattson et al., IBM Sys. J. 1970] to the paper's
// hint semantics. The classic algorithm exploits LRU inclusion: lines
// ordered by recency form a stack, an access at stack depth d hits in
// every fully-associative LRU cache with more than d lines and misses in
// the rest, so one walk yields hit counts for all sizes.
//
// Dead-tag frees and bypass migrations break the textbook version: a
// freed line leaves a free slot in every cache that held it, and caches
// of different sizes disagree about which lines they hold. Deleting the
// freed line from the stack is wrong — it would promote every deeper
// line by one position, turning later misses into phantom hits for
// intermediate sizes. Instead a freed line's stack slot is kept as a
// *hole*: depth arithmetic still counts it, and the number of holes
// among the top S entries is exactly the number of free slots in the
// size-S cache. The update rules (derived positionally, asserted
// bit-identical to TraceReplayer by tests/sweepengine_test.cpp):
//
//  * free (dead tag / bypass migration): the line's entry becomes a
//    hole in place;
//  * miss everywhere: the new line pushes on top and consumes the
//    topmost hole, if any — sizes that see the hole fill a free slot,
//    sizes above the hole evict their own per-size LRU victim (the
//    entry at stack position S, which simply slides out of the top-S
//    window);
//  * hit at depth d with a hole above: the line moves to the top and
//    the topmost hole moves down into the vacated slot, recording that
//    every size small enough to miss but deep enough to contain the
//    hole consumed its free slot, while hitting sizes keep theirs.
//
// Dirtiness is also size-dependent (a size that missed refetches the
// line clean), captured by a per-line DirtyMin = smallest size whose
// copy is dirty: a write sets it to 1, a read at depth d raises it to
// max(DirtyMin, d+1) because sizes <= d refill clean.
//
// Two Fenwick trees over the timestamp domain (all entries / holes
// only) give O(log n) depth, topmost-hole and per-size victim queries.
//
// Every replay kernel here (the two-way-LRU kernel, the generic
// lock-step replayer, the stack-distance sweep) is written as a
// chunk-fed stream — construct, feed(events), finish() — and the batch
// entry points (replayTraceMulti, sweepLRUStackDistance,
// replaySweepPoints) are one-chunk wrappers, so the streaming pipeline
// (urcm/sim/TraceStream.h) and the materialized-trace path execute the
// same per-event code and cannot diverge. The stack-distance stream's
// Fenwick trees grow geometrically because a streaming consumer does
// not know the trace length up front; the batch wrapper pre-sizes them
// to the exact domain.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/SweepEngine.h"

#include "ReplayKernels.h"

#include "urcm/sim/ShardedReplay.h"
#include "urcm/sim/TraceStore.h"
#include "urcm/sim/TraceStream.h"
#include "urcm/support/Diagnostics.h"
#include "urcm/support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

using namespace urcm;

URCM_STAT(NumSweepExperiments, "sweep.experiments",
          "Sweep experiments executed (compile+simulate+replay)");
URCM_STAT(NumSweepMemoHits, "sweep.memo-hits",
          "schedule() calls deduplicated by the experiment memo");
URCM_STAT(NumSweepPointsReplayed, "sweep.points-replayed",
          "Sweep points answered by trace replay");
URCM_STAT(NumSweepPointsReused, "sweep.points-reused",
          "Sweep points answered by reusing the base run's counters");
URCM_STAT(NumSweepTraceEvents, "sweep.trace-events",
          "Trace events generated across all experiments");
URCM_STAT(NumSweepBytesFreed, "sweep.trace-bytes-freed",
          "Bytes of materialized trace released after replay");
URCM_STAT(SweepReplayNs, "sweep.replay-ns",
          "Nanoseconds spent replaying trace chunks (consumer side)");
URCM_STAT(NumPolicyLRUPoints, "sim.policy.lru",
          "Sweep points answered under the LRU policy");
URCM_STAT(NumPolicyFIFOPoints, "sim.policy.fifo",
          "Sweep points answered under the FIFO policy");
URCM_STAT(NumPolicyRandomPoints, "sim.policy.random",
          "Sweep points answered under the Random policy");
URCM_STAT(NumPolicyMINPoints, "sim.policy.min",
          "Sweep points answered under the Belady MIN policy");
URCM_STAT(NumPolicyTreePLRUPoints, "sim.policy.tree-plru",
          "Sweep points answered under the tree-PLRU policy");
URCM_STAT(NumPolicySRRIPPoints, "sim.policy.srrip",
          "Sweep points answered under the SRRIP policy");
URCM_STAT(NumPolicyBypassPoints, "sim.policy.liveness-bypass",
          "Sweep points answered under the liveness-bypass predictor");

namespace {
/// One counter per policy so `--stats` shows how a sweep's points were
/// distributed across the policy axis (reused and replayed alike).
void countPolicyPoint(CachePolicy Policy) {
  switch (Policy) {
  case CachePolicy::LRU:
    NumPolicyLRUPoints.add();
    break;
  case CachePolicy::FIFO:
    NumPolicyFIFOPoints.add();
    break;
  case CachePolicy::Random:
    NumPolicyRandomPoints.add();
    break;
  case CachePolicy::MIN:
    NumPolicyMINPoints.add();
    break;
  case CachePolicy::TreePLRU:
    NumPolicyTreePLRUPoints.add();
    break;
  case CachePolicy::SRRIP:
    NumPolicySRRIPPoints.add();
    break;
  case CachePolicy::LivenessBypass:
    NumPolicyBypassPoints.add();
    break;
  }
}
} // namespace


//===----------------------------------------------------------------------===//
// SweepPointStream: the dispatching stream over all kernels.
//===----------------------------------------------------------------------===//

struct SweepPointStream::Impl {
  std::vector<SweepPoint> Points;
  bool UseStack = false;
  // Stack mode: one stream per hint view ([0] hinted, [1] stripped).
  std::unique_ptr<detail::StackDistanceStream> Stack[2];
  std::vector<size_t> StackIdx[2];
  // Kernel mode: the specialized two-way kernel plus the generic walk.
  std::unique_ptr<detail::LRUTwoWayStream> Fast;
  std::unique_ptr<detail::GenericMultiStream> Slow;
  std::vector<size_t> FastIdx, SlowIdx;
  /// Per-point attribution tables, parallel to Points (default-empty
  /// rows for points that did not request attribution); the kernels
  /// accumulate into these in place and takeAttribution moves them out.
  std::vector<RefAttribution> Attrib;
};

bool SweepPointStream::streamable(const std::vector<SweepPoint> &Points) {
  return std::none_of(Points.begin(), Points.end(), [](const SweepPoint &P) {
    return P.Policy == TracePolicy::MIN;
  });
}

SweepPointStream::SweepPointStream(
    std::vector<SweepPoint> Points,
    const std::vector<TraceEvent> *FullTrace, bool AllowStackFastPath)
    : P(std::make_unique<Impl>()) {
  P->Points = std::move(Points);
  const std::vector<SweepPoint> &Pts = P->Points;
  P->Attrib.resize(Pts.size());
  // Attribution pins a point to the per-event kernels: the positional
  // stack walk shares state across all sizes and cannot charge events
  // to references, so one attributing point demotes the whole batch.
  P->UseStack =
      AllowStackFastPath && !Pts.empty() &&
      std::all_of(Pts.begin(), Pts.end(), stackDistanceEligible) &&
      std::none_of(Pts.begin(), Pts.end(), [](const SweepPoint &Pt) {
        return Pt.wantsAttribution();
      });
  if (P->UseStack) {
    // One stack walk per hint view (the walk itself covers all sizes).
    for (size_t I = 0; I != Pts.size(); ++I)
      P->StackIdx[Pts[I].IgnoreHints ? 1 : 0].push_back(I);
    for (int View : {0, 1}) {
      if (P->StackIdx[View].empty())
        continue;
      std::vector<uint32_t> Sizes;
      Sizes.reserve(P->StackIdx[View].size());
      for (size_t I : P->StackIdx[View])
        Sizes.push_back(Pts[I].Config.NumLines);
      P->Stack[View] = std::make_unique<detail::StackDistanceStream>(
          std::move(Sizes), View == 1);
    }
    return;
  }
  // Partition into the specialized two-way LRU kernel and the general
  // replayer. The two groups each walk every chunk once; touching a
  // chunk twice is far cheaper than running every point through the
  // general per-event machinery.
  std::vector<SweepPoint> Fast, Slow;
  for (size_t I = 0; I != Pts.size(); ++I) {
    if (detail::lruTwoWayEligible(Pts[I])) {
      P->FastIdx.push_back(I);
      Fast.push_back(Pts[I]);
    } else {
      P->SlowIdx.push_back(I);
      Slow.push_back(Pts[I]);
    }
  }
  if (!Fast.empty())
    P->Fast = std::make_unique<detail::LRUTwoWayStream>(Fast);
  if (!Slow.empty())
    P->Slow =
        std::make_unique<detail::GenericMultiStream>(std::move(Slow), FullTrace);
  // Allocate each requesting point's table and hand its kernel a
  // pointer. Attrib was sized above and is never resized again, so the
  // element addresses stay valid for the stream's lifetime.
  for (size_t J = 0; J != P->FastIdx.size(); ++J) {
    const size_t I = P->FastIdx[J];
    if (Pts[I].wantsAttribution()) {
      P->Attrib[I] = RefAttribution(Pts[I].AttributionRefs);
      P->Fast->setAttribution(J, &P->Attrib[I]);
    }
  }
  for (size_t J = 0; J != P->SlowIdx.size(); ++J) {
    const size_t I = P->SlowIdx[J];
    if (Pts[I].wantsAttribution()) {
      P->Attrib[I] = RefAttribution(Pts[I].AttributionRefs);
      P->Slow->setAttribution(J, &P->Attrib[I]);
    }
  }
}

SweepPointStream::~SweepPointStream() = default;

void SweepPointStream::reserve(uint64_t ExpectedEvents) {
  for (int View : {0, 1})
    if (P->Stack[View])
      P->Stack[View]->reserve(ExpectedEvents);
}

void SweepPointStream::feed(const TraceEvent *Events, size_t Count) {
  if (Count == 0)
    return;
  for (int View : {0, 1})
    if (P->Stack[View])
      P->Stack[View]->feed(Events, Count);
  if (P->Fast)
    P->Fast->feed(Events, Count);
  if (P->Slow)
    P->Slow->feed(Events, Count);
}

std::vector<CacheStats> SweepPointStream::finish() {
  std::vector<CacheStats> Out(P->Points.size());
  for (int View : {0, 1}) {
    if (!P->Stack[View])
      continue;
    std::vector<CacheStats> Part = P->Stack[View]->finish();
    for (size_t I = 0; I != P->StackIdx[View].size(); ++I)
      Out[P->StackIdx[View][I]] = Part[I];
  }
  if (P->Fast) {
    std::vector<CacheStats> Part = P->Fast->finish();
    for (size_t I = 0; I != P->FastIdx.size(); ++I)
      Out[P->FastIdx[I]] = Part[I];
  }
  if (P->Slow) {
    std::vector<CacheStats> Part = P->Slow->finish();
    for (size_t I = 0; I != P->SlowIdx.size(); ++I)
      Out[P->SlowIdx[I]] = Part[I];
  }
  return Out;
}

RefAttribution SweepPointStream::takeAttribution(size_t PointIndex) {
  assert(PointIndex < P->Attrib.size() &&
         "sweep point index out of range");
  return std::move(P->Attrib[PointIndex]);
}

//===----------------------------------------------------------------------===//
// Batch wrappers: one chunk, then finish.
//===----------------------------------------------------------------------===//

std::vector<CacheStats>
urcm::replayTraceMulti(const std::vector<TraceEvent> &Trace,
                       const std::vector<SweepPoint> &Points) {
  SweepPointStream Stream(Points, &Trace, /*AllowStackFastPath=*/false);
  Stream.feed(Trace.data(), Trace.size());
  return Stream.finish();
}

bool urcm::stackDistanceEligible(const SweepPoint &Point) {
  return Point.Policy == TracePolicy::LRU &&
         Point.Config.Write == WritePolicy::WriteBack &&
         Point.Config.LineWords == 1 &&
         Point.Config.Assoc == Point.Config.NumLines &&
         Point.Config.NumLines > 0;
}

std::vector<CacheStats>
urcm::sweepLRUStackDistance(const std::vector<TraceEvent> &Trace,
                            const std::vector<uint32_t> &NumLines,
                            bool IgnoreHints) {
  detail::StackDistanceStream Stream(NumLines, IgnoreHints);
  Stream.reserve(Trace.size());
  Stream.feed(Trace.data(), Trace.size());
  return Stream.finish();
}

std::vector<CacheStats>
urcm::replaySweepPoints(const std::vector<TraceEvent> &Trace,
                        const std::vector<SweepPoint> &Points) {
  SweepPointStream Stream(Points, &Trace);
  Stream.reserve(Trace.size());
  Stream.feed(Trace.data(), Trace.size());
  return Stream.finish();
}

namespace {

/// Extracts the attribution tables of every requesting point from a
/// finished stream into \p Attrib (parallel to \p Points; default rows
/// elsewhere). Shared by the streaming, store-serve and materialized
/// paths — all three stream types expose the same takeAttribution.
template <typename StreamT>
void collectAttribution(StreamT &Stream,
                        const std::vector<SweepPoint> &Points,
                        std::vector<RefAttribution> &Attrib) {
  Attrib.assign(Points.size(), RefAttribution());
  for (size_t R = 0; R != Points.size(); ++R)
    if (Points[R].wantsAttribution())
      Attrib[R] = Stream.takeAttribution(R);
}

/// Materialized-trace replay (the Belady MIN path): same batch shape as
/// replaySweepPoints / replaySweepPointsSharded, plus attribution
/// extraction for the points that request it.
std::vector<CacheStats>
replayMaterialized(const std::vector<TraceEvent> &Trace,
                   const std::vector<SweepPoint> &Points,
                   uint32_t EffShards, ThreadPool *Pool,
                   std::vector<RefAttribution> &Attrib) {
  auto RunStream = [&](auto &Stream) {
    Stream.reserve(Trace.size());
    Stream.feed(Trace.data(), Trace.size());
    std::vector<CacheStats> Out = Stream.finish();
    collectAttribution(Stream, Points, Attrib);
    return Out;
  };
  if (EffShards > 1) {
    ShardedSweepStream Stream(Points, EffShards, Pool, &Trace);
    return RunStream(Stream);
  }
  SweepPointStream Stream(Points, &Trace);
  return RunStream(Stream);
}

} // namespace

//===----------------------------------------------------------------------===//
// SweepEngine
//===----------------------------------------------------------------------===//

SweepEngine &SweepEngine::global() {
  static SweepEngine Engine;
  return Engine;
}

void SweepEngine::schedule(const std::string &Key,
                           const std::string &HintGroup,
                           const SimConfig &Base,
                           std::vector<SweepPoint> Points, Producer Run,
                           uint64_t ContentHash) {
  std::lock_guard<std::mutex> Lock(M);
  auto [It, Inserted] = Experiments.try_emplace(Key);
  if (!Inserted) {
    NumSweepMemoHits.add();
    return;
  }
  Experiment &E = It->second;
  E.HintGroup = HintGroup;
  E.Base = Base;
  E.Points = std::move(Points);
  E.Run = std::move(Run);
  E.ContentHash = ContentHash;
}

void SweepEngine::forwardStoreDiags(const DiagnosticEngine &Local) {
  if (!StoreDiags || Local.diagnostics().empty())
    return;
  std::lock_guard<std::mutex> Lock(M);
  for (const Diagnostic &D : Local.diagnostics())
    StoreDiags->report(D.Severity, D.Loc, D.Message);
}

bool SweepEngine::serveFromStore(Experiment &E,
                                 const std::vector<SweepPoint> &Rest,
                                 uint32_t EffShards,
                                 uint64_t &TraceEvents,
                                 std::vector<CacheStats> &Replayed,
                                 std::vector<RefAttribution> &ReplayedAttrib) {
  DiagnosticEngine OpenDiags;
  TraceStoreReader Reader;
  const std::string Path = traceStorePath(StoreDir, E.ContentHash);
  const TraceStoreReader::OpenStatus Status =
      Reader.open(Path, E.ContentHash, OpenDiags);
  forwardStoreDiags(OpenDiags);
  if (Status != TraceStoreReader::OpenStatus::Ok)
    return false;

  // Warm hit: every replay point is fed from decoded chunks — the
  // Simulator is never invoked (no sim.run span on this path; asserted
  // by tests and check.sh). The store's content hash deliberately
  // ignores the data-cache policy and seed (the recorded trace is
  // policy-independent, so one stored trace serves the whole policy
  // grid), which means the stored summary's cache counters may have
  // been recorded under a different policy than this experiment's base
  // configuration. A synthetic point at the base configuration rides
  // the replay set and its counters overwrite the stored ones below.
  telemetry::ScopedPhase Serve("sweep.store-serve",
                               EffShards > 1 ? "sharded" : "streaming");
  SweepPoint BasePt;
  BasePt.Config = E.Base.Cache;
  BasePt.Policy = E.Base.Cache.Policy;
  std::vector<SweepPoint> Work = Rest;
  Work.push_back(BasePt);
  bool Ok = true;
  if (SweepPointStream::streamable(Work)) {
    // Same shape as the live streaming path: decode overlaps replay
    // through the recycled-buffer SPSC pipeline, peak memory O(chunk).
    auto ServeInto = [&](auto &Stream) {
      Stream.reserve(Reader.eventCount());
      const bool Metered = telemetry::enabled();
      uint64_t ReplayNs = 0;
      Ok = streamStoredTrace(
          Reader, [&](const TraceEvent *Events, size_t Count) {
            if (!Metered) {
              Stream.feed(Events, Count);
              return;
            }
            uint64_t T0 = telemetry::nowNanos();
            Stream.feed(Events, Count);
            ReplayNs += telemetry::nowNanos() - T0;
          });
      if (Ok) {
        uint64_t T0 = Metered ? telemetry::nowNanos() : 0;
        Replayed = Stream.finish();
        if (T0)
          ReplayNs += telemetry::nowNanos() - T0;
        collectAttribution(Stream, Work, ReplayedAttrib);
      }
      SweepReplayNs.add(ReplayNs);
    };
    if (EffShards > 1) {
      ShardedSweepStream Stream(Work, EffShards, Pool);
      ServeInto(Stream);
    } else {
      SweepPointStream Stream(Work);
      ServeInto(Stream);
    }
  } else {
    // Belady MIN: materialize the decoded trace for its backward
    // next-use pass, exactly as the live path materializes its own.
    std::vector<TraceEvent> Trace;
    Ok = Reader.readAll(Trace);
    if (Ok) {
      telemetry::ScopedPhase Replay("sweep.replay");
      uint64_t T0 = telemetry::enabled() ? telemetry::nowNanos() : 0;
      Replayed =
          replayMaterialized(Trace, Work, EffShards, Pool, ReplayedAttrib);
      if (T0)
        SweepReplayNs.add(telemetry::nowNanos() - T0);
      NumSweepBytesFreed.add(Trace.capacity() * sizeof(TraceEvent));
    }
  }
  if (!Ok) {
    // Decode failed after a fully-validated open: the file changed
    // under us. The replay consumers saw a prefix, so their state is
    // unusable — report, discard, and let the caller run live.
    DiagnosticEngine Local;
    Local.error({}, "trace store: decode failed mid-stream for '" + Path +
                        "'; falling back to live simulation");
    forwardStoreDiags(Local);
    Replayed.clear();
    ReplayedAttrib.clear();
    return false;
  }
  E.Result = Reader.summary();
  // The trailing synthetic point carries the base configuration's true
  // counters; the stored summary keeps everything that really is
  // policy-invariant (ICache stats, occupancy, instruction counts).
  E.Result.Cache = Replayed.back();
  Replayed.pop_back();
  if (ReplayedAttrib.size() > Rest.size())
    ReplayedAttrib.resize(Rest.size());
  TraceEvents = Reader.eventCount();
  return true;
}

void SweepEngine::run() {
  // Snapshot the pending set; schedule() must not be called while run()
  // is in flight.
  std::vector<Experiment *> Pending;
  {
    std::lock_guard<std::mutex> Lock(M);
    for (auto &[Key, E] : Experiments)
      if (!E.Done)
        Pending.push_back(&E);
  }

  const uint32_t EffShards = resolveShardCount(Shards, *Pool);

  Pool->parallelFor(Pending.size(), [&](size_t I) {
    Experiment &E = *Pending[I];
    telemetry::ScopedPhase ExpPhase("sweep.experiment");
    NumSweepExperiments.add();
    SimConfig Config = E.Base;

    // A point matching the base run's own cache configuration reuses
    // the base counters (replay is bit-identical, so this is pure
    // reuse); everything else replays. The partition depends only on
    // configurations, so it is computed up front and shared by both
    // trace modes. Attribution requests force a point into the replay
    // set — the base run carries no table to reuse.
    std::vector<SweepPoint> Rest;
    std::vector<size_t> RestIndex, ReusedIndex;
    for (size_t P = 0; P != E.Points.size(); ++P) {
      const SweepPoint &Pt = E.Points[P];
      countPolicyPoint(Pt.Policy);
      if (!Pt.IgnoreHints && !Pt.wantsAttribution() &&
          Pt.Config == Config.Cache && Pt.Policy == Config.Cache.Policy) {
        ReusedIndex.push_back(P);
      } else {
        Rest.push_back(Pt);
        RestIndex.push_back(P);
      }
    }

    uint64_t TraceEvents = 0;
    std::vector<CacheStats> Replayed;
    std::vector<RefAttribution> ReplayedAttrib;
    const bool StoreEnabled = !StoreDir.empty() && E.ContentHash != 0;
    const bool Served =
        StoreEnabled && serveFromStore(E, Rest, EffShards, TraceEvents,
                                       Replayed, ReplayedAttrib);

    // On a store miss the live run tees its trace into a writer so the
    // next process (or a rerun) is served warm. The writer observes; it
    // can never fail the experiment (open failure leaves it closed and
    // every call below a no-op).
    TraceStoreWriter Writer;
    if (!Served && StoreEnabled) {
      DiagnosticEngine WriterDiags;
      Writer.open(StoreDir, E.ContentHash, WriterDiags);
      forwardStoreDiags(WriterDiags);
    }

    if (Served) {
      // Nothing to simulate: base result and points came from the store.
    } else if (SweepPointStream::streamable(Rest)) {
      // Streaming mode: replay overlaps generation chunk by chunk and
      // the trace is never materialized — peak trace memory drops from
      // O(trace) to O(chunk), which is what lets the sweep methodology
      // scale to much larger workloads.
      if (Rest.empty()) {
        if (Writer.isOpen()) {
          // No replay consumers, but the trace is still worth
          // recording: stream it straight into the store.
          TraceRecordSink Record(Writer);
          Config.Sink = &Record;
          E.Result = E.Run(Config);
          Config.Sink = nullptr;
          TraceEvents = Writer.eventCount();
        } else {
          E.Result = E.Run(Config); // No replay consumers at all.
        }
      } else {
        // The span covers the whole streamed pipeline (replay overlaps
        // generation on this thread); SweepReplayNs meters the replay
        // kernels' active time alone. With sharding, feed() is the
        // cheap demux (overlapping generation) and finish() fans the
        // replay units out across the pool via nested parallelFor.
        telemetry::ScopedPhase Replay(
            "sweep.replay", EffShards > 1 ? "sharded" : "streaming");
        uint64_t SizeHint = 0;
        {
          std::lock_guard<std::mutex> Lock(M);
          auto It = Hints.find(E.HintGroup);
          if (It != Hints.end())
            SizeHint = It->second;
        }
        // Replay work is interleaved with generation on this thread, so
        // it is metered by accumulated intervals rather than one span.
        // Recording rides the producer thread: the tap sees each chunk
        // before it is queued for replay, so a store miss costs one
        // encode pass overlapped with replay, not an extra trace walk.
        std::function<void(const TraceEvent *, size_t)> RecordTap;
        if (Writer.isOpen())
          RecordTap = [&Writer](const TraceEvent *Events, size_t Count) {
            Writer.append(Events, Count);
          };
        auto StreamInto = [&](auto &Stream) {
          if (SizeHint)
            Stream.reserve(SizeHint);
          const bool Metered = telemetry::enabled();
          uint64_t ReplayNs = 0;
          E.Result = streamTrace(
              Config, E.Run,
              [&](const TraceEvent *Events, size_t Count) {
                if (!Metered) {
                  Stream.feed(Events, Count);
                  return;
                }
                uint64_t T0 = telemetry::nowNanos();
                Stream.feed(Events, Count);
                ReplayNs += telemetry::nowNanos() - T0;
              },
              /*QueueDepth=*/4, &TraceEvents, RecordTap);
          if (E.Result.ok()) {
            if (Metered) {
              uint64_t T0 = telemetry::nowNanos();
              Replayed = Stream.finish();
              ReplayNs += telemetry::nowNanos() - T0;
            } else {
              Replayed = Stream.finish();
            }
            collectAttribution(Stream, Rest, ReplayedAttrib);
          }
          SweepReplayNs.add(ReplayNs);
        };
        if (EffShards > 1) {
          ShardedSweepStream Stream(Rest, EffShards, Pool);
          StreamInto(Stream);
        } else {
          SweepPointStream Stream(Rest);
          StreamInto(Stream);
        }
      }
    } else {
      // Belady MIN needs the whole trace (backward next-use pass):
      // materialize it, replay, and drop it before the next experiment.
      Config.RecordTrace = true;
      {
        std::lock_guard<std::mutex> Lock(M);
        auto It = Hints.find(E.HintGroup);
        if (It != Hints.end())
          Config.TraceSizeHint = It->second;
      }
      E.Result = E.Run(Config);
      if (E.Result.ok()) {
        TraceEvents = E.Result.Trace.size();
        if (Writer.isOpen())
          Writer.append(E.Result.Trace.data(), E.Result.Trace.size());
        if (!Rest.empty()) {
          telemetry::ScopedPhase Replay("sweep.replay");
          uint64_t T0 = telemetry::enabled() ? telemetry::nowNanos() : 0;
          Replayed = replayMaterialized(E.Result.Trace, Rest, EffShards,
                                        Pool, ReplayedAttrib);
          if (T0)
            SweepReplayNs.add(telemetry::nowNanos() - T0);
        }
      }
      NumSweepBytesFreed.add(E.Result.Trace.capacity() *
                             sizeof(TraceEvent));
      E.Result.Trace.clear();
      E.Result.Trace.shrink_to_fit();
    }

    if (Writer.isOpen()) {
      if (E.Result.ok()) {
        DiagnosticEngine CommitDiags;
        Writer.commit(E.Result, CommitDiags);
        forwardStoreDiags(CommitDiags);
      } else {
        Writer.discard(); // Never publish a failed run's trace.
      }
    }

    if (E.Result.ok()) {
      {
        std::lock_guard<std::mutex> Lock(M);
        uint64_t &Hint = Hints[E.HintGroup];
        Hint = std::max<uint64_t>(Hint, TraceEvents);
      }
      NumSweepTraceEvents.add(TraceEvents);
      NumSweepPointsReused.add(ReusedIndex.size());
      NumSweepPointsReplayed.add(RestIndex.size());
      E.Stats.resize(E.Points.size());
      for (size_t P : ReusedIndex)
        E.Stats[P] = E.Result.Cache;
      E.Attrib.resize(E.Points.size());
      for (size_t R = 0; R != RestIndex.size(); ++R) {
        E.Stats[RestIndex[R]] = Replayed[R];
        if (R < ReplayedAttrib.size())
          E.Attrib[RestIndex[R]] = std::move(ReplayedAttrib[R]);
      }
    }
    std::lock_guard<std::mutex> Lock(M);
    E.Done = true;
  });
}

const SweepEngine::Experiment &
SweepEngine::finished(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Experiments.find(Key);
  assert(It != Experiments.end() && It->second.Done &&
         "experiment was not scheduled/run");
  return It->second;
}

bool SweepEngine::done(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Experiments.find(Key);
  return It != Experiments.end() && It->second.Done;
}

const SimResult &SweepEngine::base(const std::string &Key) const {
  return finished(Key).Result;
}

const CacheStats &SweepEngine::point(const std::string &Key,
                                     size_t Index) const {
  const Experiment &E = finished(Key);
  assert(Index < E.Stats.size() && "sweep point index out of range");
  return E.Stats[Index];
}

const RefAttribution &SweepEngine::attribution(const std::string &Key,
                                               size_t Index) const {
  const Experiment &E = finished(Key);
  assert(Index < E.Attrib.size() && "sweep point index out of range");
  assert(E.Points[Index].wantsAttribution() &&
         "point did not request attribution (set "
         "SweepPoint::AttributionRefs)");
  return E.Attrib[Index];
}
