//===- SweepEngine.cpp - Compile-once/replay-many sweeps -----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The stack-distance fast path implemented here extends Mattson's
// one-pass algorithm [Mattson et al., IBM Sys. J. 1970] to the paper's
// hint semantics. The classic algorithm exploits LRU inclusion: lines
// ordered by recency form a stack, an access at stack depth d hits in
// every fully-associative LRU cache with more than d lines and misses in
// the rest, so one walk yields hit counts for all sizes.
//
// Dead-tag frees and bypass migrations break the textbook version: a
// freed line leaves a free slot in every cache that held it, and caches
// of different sizes disagree about which lines they hold. Deleting the
// freed line from the stack is wrong — it would promote every deeper
// line by one position, turning later misses into phantom hits for
// intermediate sizes. Instead a freed line's stack slot is kept as a
// *hole*: depth arithmetic still counts it, and the number of holes
// among the top S entries is exactly the number of free slots in the
// size-S cache. The update rules (derived positionally, asserted
// bit-identical to TraceReplayer by tests/sweepengine_test.cpp):
//
//  * free (dead tag / bypass migration): the line's entry becomes a
//    hole in place;
//  * miss everywhere: the new line pushes on top and consumes the
//    topmost hole, if any — sizes that see the hole fill a free slot,
//    sizes above the hole evict their own per-size LRU victim (the
//    entry at stack position S, which simply slides out of the top-S
//    window);
//  * hit at depth d with a hole above: the line moves to the top and
//    the topmost hole moves down into the vacated slot, recording that
//    every size small enough to miss but deep enough to contain the
//    hole consumed its free slot, while hitting sizes keep theirs.
//
// Dirtiness is also size-dependent (a size that missed refetches the
// line clean), captured by a per-line DirtyMin = smallest size whose
// copy is dirty: a write sets it to 1, a read at depth d raises it to
// max(DirtyMin, d+1) because sizes <= d refill clean.
//
// Two Fenwick trees over the timestamp domain (all entries / holes
// only) give O(log n) depth, topmost-hole and per-size victim queries.
//
// Every replay kernel here (the two-way-LRU kernel, the generic
// lock-step replayer, the stack-distance sweep) is written as a
// chunk-fed stream — construct, feed(events), finish() — and the batch
// entry points (replayTraceMulti, sweepLRUStackDistance,
// replaySweepPoints) are one-chunk wrappers, so the streaming pipeline
// (urcm/sim/TraceStream.h) and the materialized-trace path execute the
// same per-event code and cannot diverge. The stack-distance stream's
// Fenwick trees grow geometrically because a streaming consumer does
// not know the trace length up front; the batch wrapper pre-sizes them
// to the exact domain.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/SweepEngine.h"

#include "urcm/sim/TraceStream.h"
#include "urcm/support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

using namespace urcm;

URCM_STAT(NumSweepExperiments, "sweep.experiments",
          "Sweep experiments executed (compile+simulate+replay)");
URCM_STAT(NumSweepMemoHits, "sweep.memo-hits",
          "schedule() calls deduplicated by the experiment memo");
URCM_STAT(NumSweepPointsReplayed, "sweep.points-replayed",
          "Sweep points answered by trace replay");
URCM_STAT(NumSweepPointsReused, "sweep.points-reused",
          "Sweep points answered by reusing the base run's counters");
URCM_STAT(NumSweepTraceEvents, "sweep.trace-events",
          "Trace events generated across all experiments");
URCM_STAT(NumSweepBytesFreed, "sweep.trace-bytes-freed",
          "Bytes of materialized trace released after replay");
URCM_STAT(SweepReplayNs, "sweep.replay-ns",
          "Nanoseconds spent replaying trace chunks (consumer side)");

namespace {

/// computeNextLineUses for an IgnoreHints replay: bypassed events count
/// as through-cache accesses there, so the next-use index must include
/// them.
std::shared_ptr<const std::vector<uint64_t>>
computeNextLineUsesUnhinted(const std::vector<TraceEvent> &Trace,
                            uint32_t LineWords) {
  CacheConfig Geo;
  Geo.LineWords = LineWords;
  CacheGeometry G(Geo);
  auto Next = std::make_shared<std::vector<uint64_t>>(
      Trace.size(), std::numeric_limits<uint64_t>::max());
  std::unordered_map<uint64_t, uint64_t> NextOfLine;
  for (uint64_t Index = Trace.size(); Index-- > 0;) {
    uint64_t LA = G.lineAddr(Trace[Index].Addr);
    auto It = NextOfLine.find(LA);
    if (It != NextOfLine.end())
      (*Next)[Index] = It->second;
    NextOfLine[LA] = Index;
  }
  return Next;
}

/// True if \p P can be served by the specialized two-way LRU kernel
/// below.
bool lruTwoWayEligible(const SweepPoint &P) {
  return P.Policy == TracePolicy::LRU &&
         P.Config.Write == WritePolicy::WriteBack &&
         P.Config.LineWords == 1 && P.Config.Assoc == 2 &&
         P.Config.NumLines >= 2 &&
         (P.Config.NumLines & (P.Config.NumLines - 1)) == 0;
}

/// Specialized lock-step replay for two-way LRU write-back caches with
/// one-word lines and power-of-two line counts — the paper's preferred
/// data-cache shape and by far the hottest sweep configuration.
/// Counters are bit-identical to TraceReplayer; the win is the state
/// encoding: each set is a two-entry move-to-front list of tag words
/// (bit 63 = dirty, all-ones = invalid), so the common case — a hit on
/// the most recent way — is one load and one compare, with no tick
/// bookkeeping (for two ways, position *is* recency).
///
/// Invariants: among valid ways of a set, slot 0 is the more recently
/// used; invalid ways can sit in either slot (an access always leaves
/// the touched line in slot 0, and dead-tag/bypass frees invalidate in
/// place). Victim choice matches DataCache::chooseVictim: an invalid
/// way first, else the LRU way (slot 1).
class LRUTwoWayStream {
  static constexpr uint64_t DirtyBit = uint64_t(1) << 63;
  static constexpr uint64_t TagMask = ~DirtyBit;
  static constexpr uint64_t Invalid = ~uint64_t(0);

  struct Way2Cache {
    uint64_t SetMask;
    bool Hinted;
    std::vector<uint64_t> Tags;
    CacheStats St;
  };
  std::vector<Way2Cache> Caches;

public:
  explicit LRUTwoWayStream(const std::vector<SweepPoint> &Points) {
    Caches.reserve(Points.size());
    for (const SweepPoint &P : Points) {
      assert(lruTwoWayEligible(P));
      Caches.push_back({uint64_t(P.Config.NumLines / 2) - 1,
                        !P.IgnoreHints,
                        std::vector<uint64_t>(P.Config.NumLines, Invalid),
                        CacheStats()});
    }
  }

  void feed(const TraceEvent *Events, size_t Count) {
    // Configuration-major: each cache streams the whole chunk with its
    // tag pointer, set mask, and counters held in registers, and the
    // chunk itself stays hot across passes. Caches are mutually
    // independent, so the interchange cannot change any counter.
    for (Way2Cache &C : Caches) {
      uint64_t *const Tags = C.Tags.data();
      const uint64_t SetMask = C.SetMask;
      const bool Hinted = C.Hinted;
      CacheStats St = C.St;
      for (const TraceEvent *E = Events, *End = Events + Count; E != End;
           ++E) {
        const uint64_t A = E->Addr;
        const bool W = E->IsWrite;
        uint64_t *P = Tags + ((A & SetMask) << 1);
        if (__builtin_expect(!(E->Info.Bypass & Hinted), 1)) {
          uint64_t T0 = P[0];
          if (W)
            ++St.Writes;
          else
            ++St.Reads;
          if ((T0 & TagMask) == A) {
            if (W) {
              ++St.WriteHits;
              P[0] = T0 | DirtyBit;
            } else {
              ++St.ReadHits;
            }
          } else if (uint64_t T1 = P[1]; (T1 & TagMask) == A) {
            if (W) {
              ++St.WriteHits;
              T1 |= DirtyBit;
            } else {
              ++St.ReadHits;
            }
            P[1] = T0;
            P[0] = T1;
          } else {
            // Miss. One-word write-allocate skips the fetch (the store
            // overwrites the whole line).
            ++St.Fills;
            if (!W)
              ++St.FillWords;
            uint64_t NewTag = W ? A | DirtyBit : A;
            if (T0 == Invalid) {
              P[0] = NewTag;
            } else {
              if (T1 != Invalid) {
                ++St.Evictions;
                if (T1 & DirtyBit) {
                  ++St.WriteBacks;
                  ++St.WriteBackWords;
                }
              }
              P[1] = T0;
              P[0] = NewTag;
            }
          }
          if (E->Info.LastRef & Hinted) {
            // The accessed line sits in slot 0 after every path above.
            ++St.DeadFrees;
            if (P[0] & DirtyBit)
              ++St.DeadWriteBacksAvoided;
            P[0] = Invalid;
          }
        } else if (W) {
          ++St.BypassWrites;
        } else {
          // Bypass read: a resident line migrates to the register file
          // (dirty lines write back first) and frees its slot.
          uint64_t T0 = P[0], T1 = P[1];
          uint64_t *Slot = (T0 & TagMask) == A   ? &P[0]
                           : (T1 & TagMask) == A ? &P[1]
                                                 : nullptr;
          if (Slot) {
            ++St.BypassHitMigrations;
            ++St.DeadFrees;
            if (*Slot & DirtyBit) {
              ++St.WriteBacks;
              ++St.WriteBackWords;
              ++St.Evictions;
            }
            *Slot = Invalid;
          } else {
            ++St.BypassReads;
          }
        }
      }
      C.St = St;
    }
  }

  std::vector<CacheStats> finish() {
    std::vector<CacheStats> Out;
    Out.reserve(Caches.size());
    for (Way2Cache &C : Caches) {
      for (uint64_t T : C.Tags)
        if (T != Invalid && (T & DirtyBit))
          ++C.St.FlushWriteBackWords;
      Out.push_back(C.St);
    }
    return Out;
  }
};

/// The general lock-step walk: one TraceReplayer per point, advanced a
/// chunk at a time (a running event index supplies MIN's
/// future-knowledge lookups, so batch callers that feed the whole trace
/// as one chunk see the original indexes).
class GenericMultiStream {
  std::vector<SweepPoint> Points;
  std::vector<TraceReplayer> Replayers;
  std::vector<TraceEvent> Stripped; // Per-chunk scratch (hints cleared).
  bool AnyUnhinted = false;
  uint64_t RunningIndex = 0;

public:
  /// \p FullTrace is required when any point uses TracePolicy::MIN.
  GenericMultiStream(std::vector<SweepPoint> PointsIn,
                     const std::vector<TraceEvent> *FullTrace)
      : Points(std::move(PointsIn)) {
    // MIN points with the same line size and hint view share one
    // next-use index.
    std::map<std::pair<uint32_t, bool>,
             std::shared_ptr<const std::vector<uint64_t>>>
        NextUses;
    Replayers.reserve(Points.size());
    for (const SweepPoint &P : Points) {
      AnyUnhinted |= P.IgnoreHints;
      std::shared_ptr<const std::vector<uint64_t>> Next;
      if (P.Policy == TracePolicy::MIN) {
        assert(FullTrace && "MIN points require the materialized trace");
        auto &Slot = NextUses[{P.Config.LineWords, P.IgnoreHints}];
        if (!Slot)
          Slot = P.IgnoreHints ? computeNextLineUsesUnhinted(
                                     *FullTrace, P.Config.LineWords)
                               : computeNextLineUses(*FullTrace,
                                                     P.Config.LineWords);
        Next = Slot;
      }
      Replayers.emplace_back(P.Config, P.Policy, std::move(Next));
    }
  }

  void feed(const TraceEvent *Events, size_t Count) {
    // Configuration-major: each replayer streams the whole chunk before
    // the next starts, keeping its cache state hot. The replayers are
    // mutually independent, so the counters equal per-point replayTrace
    // calls. IgnoreHints points see the chunk with its hint bits
    // cleared (stripped once per chunk, not per point).
    const uint64_t Base = RunningIndex;
    RunningIndex += Count;
    if (AnyUnhinted) {
      Stripped.assign(Events, Events + Count);
      for (TraceEvent &E : Stripped) {
        E.Info.Bypass = false;
        E.Info.LastRef = false;
      }
    }
    const size_t N = Points.size();
    for (size_t P = 0; P != N; ++P) {
      const TraceEvent *Src =
          Points[P].IgnoreHints && AnyUnhinted ? Stripped.data() : Events;
      TraceReplayer &R = Replayers[P];
      for (size_t K = 0; K != Count; ++K)
        R.step(Src[K], Base + K);
    }
  }

  std::vector<CacheStats> finish() {
    std::vector<CacheStats> Out;
    Out.reserve(Replayers.size());
    for (TraceReplayer &R : Replayers)
      Out.push_back(R.finish());
    return Out;
  }
};

constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();

/// Fenwick tree of 0/1 flags over a growable 1-based position domain.
/// ensure() extends the domain geometrically, preserving the set flags
/// (an O(domain) rebuild per doubling — amortized constant per
/// position, and zero rebuilds when the final domain is reserved up
/// front, as the batch wrappers do).
class BitTree {
public:
  uint64_t total() const { return Total; }

  /// Grows the domain so position \p N is addressable.
  void ensure(uint64_t N) {
    if (N < Tree.size())
      return;
    uint64_t NewDomain =
        std::max<uint64_t>(N, Tree.empty() ? 64 : 2 * (Tree.size() - 1));
    Flags.resize(NewDomain + 1, 0);
    Tree.assign(NewDomain + 1, 0);
    LogN = 0;
    while ((uint64_t(1) << (LogN + 1)) <= NewDomain)
      ++LogN;
    // Linear Fenwick rebuild: by the time position I propagates to its
    // parent, every child range of I has already folded into Tree[I].
    for (uint64_t I = 1; I <= NewDomain; ++I) {
      Tree[I] += Flags[I];
      uint64_t J = I + (I & (~I + 1));
      if (J <= NewDomain)
        Tree[J] += Tree[I];
    }
  }

  void set(uint64_t I) {
    Flags[I] = 1;
    ++Total;
    for (; I < Tree.size(); I += I & (~I + 1))
      ++Tree[I];
  }

  void clear(uint64_t I) {
    Flags[I] = 0;
    --Total;
    for (; I < Tree.size(); I += I & (~I + 1))
      --Tree[I];
  }

  /// Number of set flags at positions <= I.
  uint64_t prefix(uint64_t I) const {
    uint64_t Sum = 0;
    for (; I > 0; I -= I & (~I + 1))
      Sum += Tree[I];
    return Sum;
  }

  /// Smallest position whose prefix is >= K (the K-th set flag);
  /// requires 1 <= K <= total().
  uint64_t select(uint64_t K) const {
    uint64_t Pos = 0;
    for (uint32_t Bit = LogN + 1; Bit-- > 0;) {
      uint64_t Next = Pos + (uint64_t(1) << Bit);
      if (Next < Tree.size() && Tree[Next] < K) {
        Pos = Next;
        K -= Tree[Next];
      }
    }
    return Pos + 1;
  }

private:
  std::vector<uint32_t> Tree;
  std::vector<uint8_t> Flags;
  uint64_t Total = 0;
  uint32_t LogN = 0;
};

/// Chunk-fed form of the hole-extended Mattson sweep (see the file
/// comment for the update rules). One instance per hint view.
class StackDistanceStream {
  /// DirtyMin = smallest tracked-or-not capacity whose copy of the line
  /// is dirty (Never when clean in every size).
  struct LineState {
    uint64_t Ts;
    uint64_t DirtyMin;
  };

  std::vector<uint32_t> NumLines;
  bool IgnoreHints;
  std::vector<CacheStats> Stats;
  BitTree All;   // Valid lines and holes.
  BitTree Holes; // Holes only.
  std::unordered_map<uint64_t, LineState> Lines;
  std::vector<uint64_t> AddrOfTs;
  uint64_t NextTs = 0;

  // 0-based stack depth: number of entries more recent than Ts.
  uint64_t depthOf(uint64_t Ts) const {
    return All.total() - All.prefix(Ts);
  }

public:
  StackDistanceStream(std::vector<uint32_t> NumLinesIn, bool IgnoreHints)
      : NumLines(std::move(NumLinesIn)), IgnoreHints(IgnoreHints),
        Stats(NumLines.size()) {}

  /// Pre-sizes the timestamp domain (each event consumes at most one
  /// fresh timestamp).
  void reserve(uint64_t ExpectedEvents) {
    All.ensure(ExpectedEvents + 1);
    Holes.ensure(ExpectedEvents + 1);
    if (AddrOfTs.size() < ExpectedEvents + 2)
      AddrOfTs.resize(ExpectedEvents + 2, 0);
  }

  void feed(const TraceEvent *Events, size_t Count) {
    const size_t NumSizes = NumLines.size();
    if (NumSizes == 0)
      return;
    // Grow the timestamp domain ahead of the chunk.
    All.ensure(NextTs + Count + 1);
    Holes.ensure(NextTs + Count + 1);
    if (AddrOfTs.size() < NextTs + Count + 2)
      AddrOfTs.resize(
          std::max<uint64_t>(NextTs + Count + 2, 2 * AddrOfTs.size()), 0);

    for (const TraceEvent *EP = Events, *EEnd = Events + Count;
         EP != EEnd; ++EP) {
      const TraceEvent &E = *EP;
      const uint64_t LA = E.Addr; // One-word lines: address == line addr.
      const bool Bypass = !IgnoreHints && E.Info.Bypass;
      const bool LastRef = !IgnoreHints && E.Info.LastRef;
      auto It = Lines.find(LA);

      if (Bypass) {
        if (E.IsWrite) {
          // UmAm_STORE: straight to memory in every size.
          for (CacheStats &St : Stats)
            ++St.BypassWrites;
          continue;
        }
        if (It == Lines.end()) {
          for (CacheStats &St : Stats)
            ++St.BypassReads;
          continue;
        }
        // UmAm_LOAD: sizes holding the line migrate-and-free it (dirty
        // copies are written back first, see DataCache::read); the rest
        // read memory directly.
        const uint64_t D = depthOf(It->second.Ts);
        const uint64_t DirtyMin = It->second.DirtyMin;
        for (size_t K = 0; K != NumSizes; ++K) {
          CacheStats &St = Stats[K];
          const uint64_t S = NumLines[K];
          if (S > D) {
            ++St.BypassHitMigrations;
            ++St.DeadFrees;
            if (DirtyMin <= S) {
              ++St.WriteBacks;
              ++St.WriteBackWords;
              ++St.Evictions;
            }
          } else {
            ++St.BypassReads;
          }
        }
        // The entry becomes a hole in place: every size that held the
        // line gains a free slot at its stack position.
        Holes.set(It->second.Ts);
        Lines.erase(It);
        continue;
      }

      // Through-cache access. All queries run against the pre-access
      // stack; mutations follow after the stats loop.
      const uint64_t D = It == Lines.end() ? Never : depthOf(It->second.Ts);
      const uint64_t TotalBefore = All.total();
      uint64_t HoleTs = 0;
      uint64_t PHole = Never; // 0-based depth of the topmost hole.
      if (Holes.total() > 0) {
        HoleTs = Holes.select(Holes.total());
        PHole = depthOf(HoleTs);
      }
      // Sizes up to EvictMax miss with a full window and no hole in it:
      // they evict their own LRU victim, the entry at stack position S.
      const uint64_t EvictMax = std::min({D, PHole, TotalBefore});

      for (size_t K = 0; K != NumSizes; ++K) {
        CacheStats &St = Stats[K];
        const uint64_t S = NumLines[K];
        if (E.IsWrite)
          ++St.Writes;
        else
          ++St.Reads;
        if (D != Never && S > D) {
          if (E.IsWrite)
            ++St.WriteHits;
          else
            ++St.ReadHits;
          continue;
        }
        ++St.Fills;
        if (!E.IsWrite)
          ++St.FillWords; // One-word write-allocate skips the fetch.
        if (S <= EvictMax) {
          const uint64_t VictimTs = All.select(TotalBefore - S + 1);
          ++St.Evictions;
          if (Lines.find(AddrOfTs[VictimTs])->second.DirtyMin <= S) {
            ++St.WriteBacks;
            ++St.WriteBackWords;
          }
        }
      }

      // Stack update.
      const uint64_t NewTs = ++NextTs;
      AddrOfTs[NewTs] = LA;
      if (It != Lines.end()) {
        const uint64_t OldTs = It->second.Ts;
        All.clear(OldTs);
        if (PHole != Never && HoleTs > OldTs) {
          // The topmost hole moves down into the vacated slot: sizes in
          // (PHole, D] missed and consumed their free slot; hitting
          // sizes keep theirs.
          Holes.clear(HoleTs);
          All.clear(HoleTs);
          Holes.set(OldTs);
          All.set(OldTs);
        }
        It->second.Ts = NewTs;
        if (E.IsWrite)
          It->second.DirtyMin = 1;
        else if (It->second.DirtyMin != Never)
          It->second.DirtyMin = std::max(It->second.DirtyMin, D + 1);
      } else {
        // Miss everywhere: the topmost hole (if any) is consumed.
        if (PHole != Never) {
          Holes.clear(HoleTs);
          All.clear(HoleTs);
        }
        Lines.emplace(LA, LineState{NewTs, E.IsWrite ? 1 : Never});
      }
      All.set(NewTs);

      if (LastRef) {
        // The line (now on top, resident in every size) is freed; dirty
        // copies are dropped without write-back.
        const LineState &LS = Lines.find(LA)->second;
        for (size_t K = 0; K != NumSizes; ++K) {
          ++Stats[K].DeadFrees;
          if (LS.DirtyMin <= NumLines[K])
            ++Stats[K].DeadWriteBacksAvoided;
        }
        Holes.set(NewTs);
        Lines.erase(LA);
      }
    }
  }

  std::vector<CacheStats> finish() {
    // End of program: flush the remaining dirty lines of every size.
    for (const auto &[Addr, LS] : Lines) {
      if (LS.DirtyMin == Never)
        continue;
      const uint64_t P = depthOf(LS.Ts);
      for (size_t K = 0; K != NumLines.size(); ++K)
        if (NumLines[K] > P && LS.DirtyMin <= NumLines[K])
          ++Stats[K].FlushWriteBackWords;
    }
    return Stats;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// SweepPointStream: the dispatching stream over all kernels.
//===----------------------------------------------------------------------===//

struct SweepPointStream::Impl {
  std::vector<SweepPoint> Points;
  bool UseStack = false;
  // Stack mode: one stream per hint view ([0] hinted, [1] stripped).
  std::unique_ptr<StackDistanceStream> Stack[2];
  std::vector<size_t> StackIdx[2];
  // Kernel mode: the specialized two-way kernel plus the generic walk.
  std::unique_ptr<LRUTwoWayStream> Fast;
  std::unique_ptr<GenericMultiStream> Slow;
  std::vector<size_t> FastIdx, SlowIdx;
};

bool SweepPointStream::streamable(const std::vector<SweepPoint> &Points) {
  return std::none_of(Points.begin(), Points.end(), [](const SweepPoint &P) {
    return P.Policy == TracePolicy::MIN;
  });
}

SweepPointStream::SweepPointStream(
    std::vector<SweepPoint> Points,
    const std::vector<TraceEvent> *FullTrace, bool AllowStackFastPath)
    : P(std::make_unique<Impl>()) {
  P->Points = std::move(Points);
  const std::vector<SweepPoint> &Pts = P->Points;
  P->UseStack =
      AllowStackFastPath && !Pts.empty() &&
      std::all_of(Pts.begin(), Pts.end(), stackDistanceEligible);
  if (P->UseStack) {
    // One stack walk per hint view (the walk itself covers all sizes).
    for (size_t I = 0; I != Pts.size(); ++I)
      P->StackIdx[Pts[I].IgnoreHints ? 1 : 0].push_back(I);
    for (int View : {0, 1}) {
      if (P->StackIdx[View].empty())
        continue;
      std::vector<uint32_t> Sizes;
      Sizes.reserve(P->StackIdx[View].size());
      for (size_t I : P->StackIdx[View])
        Sizes.push_back(Pts[I].Config.NumLines);
      P->Stack[View] = std::make_unique<StackDistanceStream>(
          std::move(Sizes), View == 1);
    }
    return;
  }
  // Partition into the specialized two-way LRU kernel and the general
  // replayer. The two groups each walk every chunk once; touching a
  // chunk twice is far cheaper than running every point through the
  // general per-event machinery.
  std::vector<SweepPoint> Fast, Slow;
  for (size_t I = 0; I != Pts.size(); ++I) {
    if (lruTwoWayEligible(Pts[I])) {
      P->FastIdx.push_back(I);
      Fast.push_back(Pts[I]);
    } else {
      P->SlowIdx.push_back(I);
      Slow.push_back(Pts[I]);
    }
  }
  if (!Fast.empty())
    P->Fast = std::make_unique<LRUTwoWayStream>(Fast);
  if (!Slow.empty())
    P->Slow =
        std::make_unique<GenericMultiStream>(std::move(Slow), FullTrace);
}

SweepPointStream::~SweepPointStream() = default;

void SweepPointStream::reserve(uint64_t ExpectedEvents) {
  for (int View : {0, 1})
    if (P->Stack[View])
      P->Stack[View]->reserve(ExpectedEvents);
}

void SweepPointStream::feed(const TraceEvent *Events, size_t Count) {
  if (Count == 0)
    return;
  for (int View : {0, 1})
    if (P->Stack[View])
      P->Stack[View]->feed(Events, Count);
  if (P->Fast)
    P->Fast->feed(Events, Count);
  if (P->Slow)
    P->Slow->feed(Events, Count);
}

std::vector<CacheStats> SweepPointStream::finish() {
  std::vector<CacheStats> Out(P->Points.size());
  for (int View : {0, 1}) {
    if (!P->Stack[View])
      continue;
    std::vector<CacheStats> Part = P->Stack[View]->finish();
    for (size_t I = 0; I != P->StackIdx[View].size(); ++I)
      Out[P->StackIdx[View][I]] = Part[I];
  }
  if (P->Fast) {
    std::vector<CacheStats> Part = P->Fast->finish();
    for (size_t I = 0; I != P->FastIdx.size(); ++I)
      Out[P->FastIdx[I]] = Part[I];
  }
  if (P->Slow) {
    std::vector<CacheStats> Part = P->Slow->finish();
    for (size_t I = 0; I != P->SlowIdx.size(); ++I)
      Out[P->SlowIdx[I]] = Part[I];
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Batch wrappers: one chunk, then finish.
//===----------------------------------------------------------------------===//

std::vector<CacheStats>
urcm::replayTraceMulti(const std::vector<TraceEvent> &Trace,
                       const std::vector<SweepPoint> &Points) {
  SweepPointStream Stream(Points, &Trace, /*AllowStackFastPath=*/false);
  Stream.feed(Trace.data(), Trace.size());
  return Stream.finish();
}

bool urcm::stackDistanceEligible(const SweepPoint &Point) {
  return Point.Policy == TracePolicy::LRU &&
         Point.Config.Write == WritePolicy::WriteBack &&
         Point.Config.LineWords == 1 &&
         Point.Config.Assoc == Point.Config.NumLines &&
         Point.Config.NumLines > 0;
}

std::vector<CacheStats>
urcm::sweepLRUStackDistance(const std::vector<TraceEvent> &Trace,
                            const std::vector<uint32_t> &NumLines,
                            bool IgnoreHints) {
  StackDistanceStream Stream(NumLines, IgnoreHints);
  Stream.reserve(Trace.size());
  Stream.feed(Trace.data(), Trace.size());
  return Stream.finish();
}

std::vector<CacheStats>
urcm::replaySweepPoints(const std::vector<TraceEvent> &Trace,
                        const std::vector<SweepPoint> &Points) {
  SweepPointStream Stream(Points, &Trace);
  Stream.reserve(Trace.size());
  Stream.feed(Trace.data(), Trace.size());
  return Stream.finish();
}

//===----------------------------------------------------------------------===//
// SweepEngine
//===----------------------------------------------------------------------===//

SweepEngine &SweepEngine::global() {
  static SweepEngine Engine;
  return Engine;
}

void SweepEngine::schedule(const std::string &Key,
                           const std::string &HintGroup,
                           const SimConfig &Base,
                           std::vector<SweepPoint> Points, Producer Run) {
  std::lock_guard<std::mutex> Lock(M);
  auto [It, Inserted] = Experiments.try_emplace(Key);
  if (!Inserted) {
    NumSweepMemoHits.add();
    return;
  }
  Experiment &E = It->second;
  E.HintGroup = HintGroup;
  E.Base = Base;
  E.Points = std::move(Points);
  E.Run = std::move(Run);
}

void SweepEngine::run() {
  // Snapshot the pending set; schedule() must not be called while run()
  // is in flight.
  std::vector<Experiment *> Pending;
  {
    std::lock_guard<std::mutex> Lock(M);
    for (auto &[Key, E] : Experiments)
      if (!E.Done)
        Pending.push_back(&E);
  }

  Pool->parallelFor(Pending.size(), [&](size_t I) {
    Experiment &E = *Pending[I];
    telemetry::ScopedPhase ExpPhase("sweep.experiment");
    NumSweepExperiments.add();
    SimConfig Config = E.Base;

    // A point matching the base run's own cache configuration reuses
    // the base counters (replay is bit-identical, so this is pure
    // reuse); everything else replays. The partition depends only on
    // configurations, so it is computed up front and shared by both
    // trace modes.
    std::vector<SweepPoint> Rest;
    std::vector<size_t> RestIndex, ReusedIndex;
    for (size_t P = 0; P != E.Points.size(); ++P) {
      const SweepPoint &Pt = E.Points[P];
      if (!Pt.IgnoreHints && Pt.Config == Config.Cache &&
          Pt.Policy == tracePolicyFor(Config.Cache.Policy)) {
        ReusedIndex.push_back(P);
      } else {
        Rest.push_back(Pt);
        RestIndex.push_back(P);
      }
    }

    uint64_t TraceEvents = 0;
    std::vector<CacheStats> Replayed;
    if (SweepPointStream::streamable(Rest)) {
      // Streaming mode: replay overlaps generation chunk by chunk and
      // the trace is never materialized — peak trace memory drops from
      // O(trace) to O(chunk), which is what lets the sweep methodology
      // scale to much larger workloads.
      if (Rest.empty()) {
        E.Result = E.Run(Config); // No replay consumers at all.
      } else {
        // The span covers the whole streamed pipeline (replay overlaps
        // generation on this thread); SweepReplayNs meters the replay
        // kernels' active time alone.
        telemetry::ScopedPhase Replay("sweep.replay", "streaming");
        SweepPointStream Stream(Rest);
        // Replay work is interleaved with generation on this thread, so
        // it is metered by accumulated intervals rather than one span.
        const bool Metered = telemetry::enabled();
        uint64_t ReplayNs = 0;
        E.Result = streamTrace(
            Config, E.Run,
            [&](const TraceEvent *Events, size_t Count) {
              if (!Metered) {
                Stream.feed(Events, Count);
                return;
              }
              uint64_t T0 = telemetry::nowNanos();
              Stream.feed(Events, Count);
              ReplayNs += telemetry::nowNanos() - T0;
            },
            /*QueueDepth=*/4, &TraceEvents);
        if (E.Result.ok()) {
          if (Metered) {
            uint64_t T0 = telemetry::nowNanos();
            Replayed = Stream.finish();
            ReplayNs += telemetry::nowNanos() - T0;
          } else {
            Replayed = Stream.finish();
          }
        }
        SweepReplayNs.add(ReplayNs);
      }
    } else {
      // Belady MIN needs the whole trace (backward next-use pass):
      // materialize it, replay, and drop it before the next experiment.
      Config.RecordTrace = true;
      {
        std::lock_guard<std::mutex> Lock(M);
        auto It = Hints.find(E.HintGroup);
        if (It != Hints.end())
          Config.TraceSizeHint = It->second;
      }
      E.Result = E.Run(Config);
      if (E.Result.ok()) {
        TraceEvents = E.Result.Trace.size();
        if (!Rest.empty()) {
          telemetry::ScopedPhase Replay("sweep.replay");
          uint64_t T0 = telemetry::enabled() ? telemetry::nowNanos() : 0;
          Replayed = replaySweepPoints(E.Result.Trace, Rest);
          if (T0)
            SweepReplayNs.add(telemetry::nowNanos() - T0);
        }
      }
      NumSweepBytesFreed.add(E.Result.Trace.capacity() *
                             sizeof(TraceEvent));
      E.Result.Trace.clear();
      E.Result.Trace.shrink_to_fit();
    }

    if (E.Result.ok()) {
      {
        std::lock_guard<std::mutex> Lock(M);
        uint64_t &Hint = Hints[E.HintGroup];
        Hint = std::max<uint64_t>(Hint, TraceEvents);
      }
      NumSweepTraceEvents.add(TraceEvents);
      NumSweepPointsReused.add(ReusedIndex.size());
      NumSweepPointsReplayed.add(RestIndex.size());
      E.Stats.resize(E.Points.size());
      for (size_t P : ReusedIndex)
        E.Stats[P] = E.Result.Cache;
      for (size_t R = 0; R != RestIndex.size(); ++R)
        E.Stats[RestIndex[R]] = Replayed[R];
    }
    std::lock_guard<std::mutex> Lock(M);
    E.Done = true;
  });
}

const SweepEngine::Experiment &
SweepEngine::finished(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Experiments.find(Key);
  assert(It != Experiments.end() && It->second.Done &&
         "experiment was not scheduled/run");
  return It->second;
}

bool SweepEngine::done(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Experiments.find(Key);
  return It != Experiments.end() && It->second.Done;
}

const SimResult &SweepEngine::base(const std::string &Key) const {
  return finished(Key).Result;
}

const CacheStats &SweepEngine::point(const std::string &Key,
                                     size_t Index) const {
  const Experiment &E = finished(Key);
  assert(Index < E.Stats.size() && "sweep point index out of range");
  return E.Stats[Index];
}
