//===- AST.cpp - MC AST utilities and printer -----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/lang/AST.h"

#include "urcm/support/StringUtils.h"

using namespace urcm;

std::string Type::str() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::Int:
    return "int";
  case Kind::Pointer:
    return "int*";
  case Kind::Array:
    return formatString("int[%u]", NumElements);
  }
  return "?";
}

FunctionDecl *TranslationUnit::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// AST printer
//===----------------------------------------------------------------------===//

namespace {

/// Renders expressions and statements as indented pseudo-source. Used by
/// parser tests to check tree shape and by the alias-lab example.
class ASTPrinter {
public:
  std::string run(const TranslationUnit &TU) {
    for (const auto &G : TU.globals())
      line(formatString("global %s %s", G->type().str().c_str(),
                        G->name().c_str()));
    for (const auto &F : TU.functions())
      printFunction(*F);
    return Out;
  }

private:
  void line(const std::string &Text) {
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += Text;
    Out += '\n';
  }

  void printFunction(const FunctionDecl &F) {
    std::vector<std::string> Params;
    for (const auto &P : F.params())
      Params.push_back(P->type().str() + " " + P->name());
    line(formatString("func %s %s(%s)", F.returnType().str().c_str(),
                      F.name().c_str(), join(Params, ", ").c_str()));
    if (F.body()) {
      ++Indent;
      printStmt(*F.body());
      --Indent;
    }
  }

  void printStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block: {
      const auto &B = *cast<BlockStmt>(&S);
      line("{");
      ++Indent;
      for (const auto &Child : B.stmts())
        printStmt(*Child);
      --Indent;
      line("}");
      return;
    }
    case Stmt::Kind::Decl: {
      const auto &D = *cast<DeclStmt>(&S);
      std::string Text = formatString("decl %s %s",
                                      D.decl()->type().str().c_str(),
                                      D.decl()->name().c_str());
      if (D.decl()->init())
        Text += " = " + printExpr(*D.decl()->init());
      line(Text);
      return;
    }
    case Stmt::Kind::Expr:
      line(printExpr(*cast<ExprStmt>(&S)->expr()));
      return;
    case Stmt::Kind::Assign: {
      const auto &A = *cast<AssignStmt>(&S);
      line(printExpr(*A.lhs()) + " = " + printExpr(*A.rhs()));
      return;
    }
    case Stmt::Kind::If: {
      const auto &I = *cast<IfStmt>(&S);
      line("if " + printExpr(*I.cond()));
      ++Indent;
      printStmt(*I.thenStmt());
      --Indent;
      if (I.elseStmt()) {
        line("else");
        ++Indent;
        printStmt(*I.elseStmt());
        --Indent;
      }
      return;
    }
    case Stmt::Kind::While: {
      const auto &W = *cast<WhileStmt>(&S);
      line("while " + printExpr(*W.cond()));
      ++Indent;
      printStmt(*W.body());
      --Indent;
      return;
    }
    case Stmt::Kind::DoWhile: {
      const auto &W = *cast<DoWhileStmt>(&S);
      line("do");
      ++Indent;
      printStmt(*W.body());
      --Indent;
      line("while " + printExpr(*W.cond()));
      return;
    }
    case Stmt::Kind::For: {
      const auto &F = *cast<ForStmt>(&S);
      line("for");
      ++Indent;
      if (F.init())
        printStmt(*F.init());
      if (F.cond())
        line("cond " + printExpr(*F.cond()));
      if (F.step())
        printStmt(*F.step());
      printStmt(*F.body());
      --Indent;
      return;
    }
    case Stmt::Kind::Return: {
      const auto &R = *cast<ReturnStmt>(&S);
      line(R.value() ? "return " + printExpr(*R.value()) : "return");
      return;
    }
    case Stmt::Kind::Break:
      line("break");
      return;
    case Stmt::Kind::Continue:
      line("continue");
      return;
    }
  }

  std::string printExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLiteral:
      return formatString(
          "%lld",
          static_cast<long long>(cast<IntLiteralExpr>(&E)->value()));
    case Expr::Kind::VarRef:
      return cast<VarRefExpr>(&E)->decl()->name();
    case Expr::Kind::Unary: {
      const auto &U = *cast<UnaryExpr>(&E);
      const char *Op = "?";
      switch (U.op()) {
      case UnaryOp::Neg:
        Op = "-";
        break;
      case UnaryOp::LogicalNot:
        Op = "!";
        break;
      case UnaryOp::BitNot:
        Op = "~";
        break;
      case UnaryOp::Deref:
        Op = "*";
        break;
      case UnaryOp::AddrOf:
        Op = "&";
        break;
      }
      return std::string("(") + Op + printExpr(*U.operand()) + ")";
    }
    case Expr::Kind::Binary: {
      const auto &B = *cast<BinaryExpr>(&E);
      const char *Op = binaryOpSpelling(B.op());
      return "(" + printExpr(*B.lhs()) + " " + Op + " " +
             printExpr(*B.rhs()) + ")";
    }
    case Expr::Kind::Index: {
      const auto &I = *cast<IndexExpr>(&E);
      return printExpr(*I.base()) + "[" + printExpr(*I.index()) + "]";
    }
    case Expr::Kind::Call: {
      const auto &C = *cast<CallExpr>(&E);
      std::vector<std::string> Args;
      for (const auto &A : C.args())
        Args.push_back(printExpr(*A));
      std::string Name =
          C.isBuiltin() ? std::string("print") : C.callee()->name();
      return Name + "(" + join(Args, ", ") + ")";
    }
    }
    return "?";
  }

  static const char *binaryOpSpelling(BinaryOp Op) {
    switch (Op) {
    case BinaryOp::Add:
      return "+";
    case BinaryOp::Sub:
      return "-";
    case BinaryOp::Mul:
      return "*";
    case BinaryOp::Div:
      return "/";
    case BinaryOp::Rem:
      return "%";
    case BinaryOp::And:
      return "&";
    case BinaryOp::Or:
      return "|";
    case BinaryOp::Xor:
      return "^";
    case BinaryOp::Shl:
      return "<<";
    case BinaryOp::Shr:
      return ">>";
    case BinaryOp::Lt:
      return "<";
    case BinaryOp::Le:
      return "<=";
    case BinaryOp::Gt:
      return ">";
    case BinaryOp::Ge:
      return ">=";
    case BinaryOp::Eq:
      return "==";
    case BinaryOp::Ne:
      return "!=";
    case BinaryOp::LogicalAnd:
      return "&&";
    case BinaryOp::LogicalOr:
      return "||";
    }
    return "?";
  }

  std::string Out;
  int Indent = 0;
};

} // namespace

std::string urcm::printAST(const TranslationUnit &TU) {
  ASTPrinter P;
  return P.run(TU);
}
