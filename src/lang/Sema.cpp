//===- Sema.cpp - MC semantic analysis ------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/lang/Sema.h"

#include "urcm/lang/Parser.h"
#include "urcm/support/StringUtils.h"

using namespace urcm;

namespace {

/// Array-to-pointer decay: the type an expression has when used as an
/// r-value word.
Type decayed(Type T) { return T.isArray() ? Type::pointerTy() : T; }

class SemaVisitor {
public:
  SemaVisitor(TranslationUnit &TU, DiagnosticEngine &Diags)
      : TU(TU), Diags(Diags) {}

  bool run() {
    for (const auto &F : TU.functions())
      checkFunction(*F);
    if (const FunctionDecl *Main = TU.findFunction("main")) {
      if (!Main->params().empty())
        Diags.error(Main->loc(), "'main' must take no parameters");
    } else {
      Diags.error(SourceLoc(), "program has no 'main' function");
    }
    return !Diags.hasErrors();
  }

private:
  void checkFunction(FunctionDecl &F) {
    CurFunction = &F;
    for (const auto &P : F.params())
      if (!P->type().isScalar())
        Diags.error(P->loc(), "parameters must be int or int*");
    if (F.body())
      checkStmt(*F.body());
    CurFunction = nullptr;
  }

  void checkStmt(Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      for (const auto &Child : cast<BlockStmt>(&S)->stmts())
        checkStmt(*Child);
      return;
    case Stmt::Kind::Decl: {
      VarDecl *D = cast<DeclStmt>(&S)->decl();
      if (Expr *Init = D->init()) {
        Type Ty = checkExpr(*Init);
        if (!assignable(D->type(), Ty))
          Diags.error(S.loc(),
                      formatString("cannot initialize '%s' of type %s "
                                   "with value of type %s",
                                   D->name().c_str(),
                                   D->type().str().c_str(),
                                   Ty.str().c_str()));
      }
      return;
    }
    case Stmt::Kind::Expr: {
      Expr *E = cast<ExprStmt>(&S)->expr();
      checkExpr(*E);
      if (!isa<CallExpr>(E))
        Diags.warning(S.loc(), "expression statement has no effect");
      return;
    }
    case Stmt::Kind::Assign: {
      auto *A = cast<AssignStmt>(&S);
      Type LHS = checkExpr(*A->lhs());
      Type RHS = checkExpr(*A->rhs());
      if (!isLValue(*A->lhs()))
        Diags.error(S.loc(), "left side of assignment is not an l-value");
      else if (LHS.isArray())
        Diags.error(S.loc(), "cannot assign to an array");
      else if (!assignable(LHS, RHS))
        Diags.error(S.loc(),
                    formatString("cannot assign value of type %s to %s",
                                 RHS.str().c_str(), LHS.str().c_str()));
      return;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(&S);
      checkCondition(*I->cond());
      checkStmt(*I->thenStmt());
      if (I->elseStmt())
        checkStmt(*I->elseStmt());
      return;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(&S);
      checkCondition(*W->cond());
      ++LoopDepth;
      checkStmt(*W->body());
      --LoopDepth;
      return;
    }
    case Stmt::Kind::DoWhile: {
      auto *W = cast<DoWhileStmt>(&S);
      ++LoopDepth;
      checkStmt(*W->body());
      --LoopDepth;
      checkCondition(*W->cond());
      return;
    }
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(&S);
      if (F->init())
        checkStmt(*F->init());
      if (F->cond())
        checkCondition(*F->cond());
      if (F->step())
        checkStmt(*F->step());
      ++LoopDepth;
      checkStmt(*F->body());
      --LoopDepth;
      return;
    }
    case Stmt::Kind::Return: {
      auto *R = cast<ReturnStmt>(&S);
      Type Want = CurFunction->returnType();
      if (R->value()) {
        Type Got = checkExpr(*R->value());
        if (Want.isVoid())
          Diags.error(S.loc(), "void function cannot return a value");
        else if (!assignable(Want, Got))
          Diags.error(S.loc(),
                      formatString("return type mismatch: expected %s, "
                                   "got %s",
                                   Want.str().c_str(), Got.str().c_str()));
      } else if (!Want.isVoid()) {
        Diags.error(S.loc(), "non-void function must return a value");
      }
      return;
    }
    case Stmt::Kind::Break:
      if (LoopDepth == 0)
        Diags.error(S.loc(), "'break' outside of a loop");
      return;
    case Stmt::Kind::Continue:
      if (LoopDepth == 0)
        Diags.error(S.loc(), "'continue' outside of a loop");
      return;
    }
  }

  void checkCondition(Expr &E) {
    Type Ty = checkExpr(E);
    if (!decayed(Ty).isScalar())
      Diags.error(E.loc(), "condition must be a scalar value");
  }

  /// True if \p E denotes a storage location.
  static bool isLValue(const Expr &E) {
    if (const auto *V = dyn_cast<VarRefExpr>(&E))
      return !V->decl()->type().isVoid();
    if (isa<IndexExpr>(&E))
      return true;
    if (const auto *U = dyn_cast<UnaryExpr>(&E))
      return U->op() == UnaryOp::Deref;
    return false;
  }

  /// True if a value of type \p From can be stored into storage of type
  /// \p To (with decay).
  static bool assignable(Type To, Type From) {
    From = decayed(From);
    if (To.isInt())
      return From.isInt();
    if (To.isPointer())
      return From.isPointer();
    return false;
  }

  Type checkExpr(Expr &E) {
    Type Ty = computeType(E);
    E.setType(Ty);
    return Ty;
  }

  Type computeType(Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLiteral:
      return Type::intTy();
    case Expr::Kind::VarRef:
      return cast<VarRefExpr>(&E)->decl()->type();
    case Expr::Kind::Unary:
      return checkUnary(*cast<UnaryExpr>(&E));
    case Expr::Kind::Binary:
      return checkBinary(*cast<BinaryExpr>(&E));
    case Expr::Kind::Index: {
      auto *I = cast<IndexExpr>(&E);
      Type Base = checkExpr(*I->base());
      Type Index = checkExpr(*I->index());
      if (!Base.isArray() && !Base.isPointer())
        Diags.error(E.loc(), "subscripted value is not an array or pointer");
      if (!Index.isInt())
        Diags.error(E.loc(), "array subscript must be an int");
      return Type::intTy();
    }
    case Expr::Kind::Call:
      return checkCall(*cast<CallExpr>(&E));
    }
    return Type::intTy();
  }

  Type checkUnary(UnaryExpr &U) {
    Type Operand = checkExpr(*U.operand());
    switch (U.op()) {
    case UnaryOp::Neg:
    case UnaryOp::LogicalNot:
    case UnaryOp::BitNot:
      if (!decayed(Operand).isInt())
        Diags.error(U.loc(), "operand must be an int");
      return Type::intTy();
    case UnaryOp::Deref:
      if (!decayed(Operand).isPointer())
        Diags.error(U.loc(), "cannot dereference a non-pointer");
      return Type::intTy();
    case UnaryOp::AddrOf: {
      Expr *Inner = U.operand();
      if (auto *V = dyn_cast<VarRefExpr>(Inner)) {
        // Taking the address of a scalar makes it potentially aliased
        // through any pointer: the frontend half of the paper's
        // ambiguity classification.
        if (V->decl()->type().isScalar())
          V->decl()->setAddressTaken();
      } else if (!isLValue(*Inner)) {
        Diags.error(U.loc(), "cannot take the address of an r-value");
      }
      return Type::pointerTy();
    }
    }
    return Type::intTy();
  }

  Type checkBinary(BinaryExpr &B) {
    Type L = decayed(checkExpr(*B.lhs()));
    Type R = decayed(checkExpr(*B.rhs()));
    switch (B.op()) {
    case BinaryOp::Add:
      if (L.isPointer() && R.isInt())
        return Type::pointerTy();
      if (L.isInt() && R.isPointer())
        return Type::pointerTy();
      if (L.isInt() && R.isInt())
        return Type::intTy();
      break;
    case BinaryOp::Sub:
      if (L.isPointer() && R.isInt())
        return Type::pointerTy();
      if (L.isPointer() && R.isPointer())
        return Type::intTy();
      if (L.isInt() && R.isInt())
        return Type::intTy();
      break;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem:
    case BinaryOp::And:
    case BinaryOp::Or:
    case BinaryOp::Xor:
    case BinaryOp::Shl:
    case BinaryOp::Shr:
      if (L.isInt() && R.isInt())
        return Type::intTy();
      break;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if ((L.isInt() && R.isInt()) || (L.isPointer() && R.isPointer()))
        return Type::intTy();
      break;
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      if (L.isScalar() && R.isScalar())
        return Type::intTy();
      break;
    }
    Diags.error(B.loc(), formatString("invalid operands to binary "
                                      "operator: %s and %s",
                                      L.str().c_str(), R.str().c_str()));
    return Type::intTy();
  }

  Type checkCall(CallExpr &C) {
    std::vector<Type> ArgTypes;
    for (const auto &A : C.args())
      ArgTypes.push_back(checkExpr(*A));

    if (C.builtin() == BuiltinKind::Print) {
      if (ArgTypes.size() != 1 || !decayed(ArgTypes[0]).isInt())
        Diags.error(C.loc(), "print takes exactly one int argument");
      return Type::voidTy();
    }

    FunctionDecl *Callee = C.callee();
    if (ArgTypes.size() != Callee->params().size()) {
      Diags.error(C.loc(),
                  formatString("call to '%s' with %zu arguments; expected "
                               "%zu",
                               Callee->name().c_str(), ArgTypes.size(),
                               Callee->params().size()));
      return Callee->returnType();
    }
    for (size_t I = 0, E = ArgTypes.size(); I != E; ++I)
      if (!assignable(Callee->params()[I]->type(), ArgTypes[I]))
        Diags.error(C.args()[I]->loc(),
                    formatString("argument %zu to '%s' has type %s; "
                                 "expected %s",
                                 I + 1, Callee->name().c_str(),
                                 ArgTypes[I].str().c_str(),
                                 Callee->params()[I]->type().str().c_str()));
    return Callee->returnType();
  }

  TranslationUnit &TU;
  DiagnosticEngine &Diags;
  FunctionDecl *CurFunction = nullptr;
  unsigned LoopDepth = 0;
};

} // namespace

bool urcm::analyze(TranslationUnit &TU, DiagnosticEngine &Diags) {
  SemaVisitor V(TU, Diags);
  return V.run();
}

std::unique_ptr<TranslationUnit>
urcm::parseAndAnalyze(const std::string &Source, DiagnosticEngine &Diags) {
  auto TU = parseMC(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  if (!analyze(*TU, Diags))
    return nullptr;
  return TU;
}
