//===- Parser.cpp - MC recursive-descent parser ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/lang/Parser.h"

#include "urcm/support/StringUtils.h"

using namespace urcm;

Parser::Parser(std::string Source, DiagnosticEngine &Diags)
    : Lex(std::move(Source), Diags), Diags(Diags) {
  Tok = Lex.next();
}

void Parser::consume() { Tok = Lex.next(); }

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (Tok.is(Kind)) {
    consume();
    return true;
  }
  Diags.error(Tok.Loc, formatString("expected %s %s, found %s",
                                    tokenKindName(Kind), Context,
                                    tokenKindName(Tok.Kind)));
  return false;
}

bool Parser::accept(TokenKind Kind) {
  if (!Tok.is(Kind))
    return false;
  consume();
  return true;
}

void Parser::pushScope() { Scopes.emplace_back(); }

void Parser::popScope() { Scopes.pop_back(); }

VarDecl *Parser::lookupVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

bool Parser::declareVar(VarDecl *Decl) {
  assert(!Scopes.empty() && "no active scope");
  auto [It, Inserted] = Scopes.back().try_emplace(Decl->name(), Decl);
  (void)It;
  if (!Inserted)
    Diags.error(Decl->loc(),
                formatString("redeclaration of '%s'", Decl->name().c_str()));
  return Inserted;
}

std::unique_ptr<TranslationUnit> Parser::parse() {
  TU = std::make_unique<TranslationUnit>();
  pushScope(); // Global scope.
  while (!Tok.is(TokenKind::Eof))
    parseTopLevel();
  popScope();
  return std::move(TU);
}

/// type-prefix := ('int' '*'? | 'void')
Type Parser::parseTypePrefix(bool AllowVoid) {
  if (Tok.is(TokenKind::KwVoid)) {
    if (!AllowVoid)
      Diags.error(Tok.Loc, "'void' is only valid as a return type");
    consume();
    return Type::voidTy();
  }
  expect(TokenKind::KwInt, "in type");
  if (accept(TokenKind::Star))
    return Type::pointerTy();
  return Type::intTy();
}

/// top-level := type identifier ( function-rest | global-var-rest )
void Parser::parseTopLevel() {
  SourceLoc Loc = Tok.Loc;
  Type Ty = parseTypePrefix(/*AllowVoid=*/true);
  std::string Name = Tok.Text;
  if (!expect(TokenKind::Identifier, "in top-level declaration")) {
    consume();
    return;
  }

  if (Tok.is(TokenKind::LParen)) {
    parseFunctionRest(Ty, std::move(Name), Loc);
    return;
  }

  // Global variable; optional `[N]` array suffix, no initializer (globals
  // are zero-initialized, matching the paper's simulator environment).
  if (Ty.isVoid())
    Diags.error(Loc, "global variable cannot have type 'void'");
  if (accept(TokenKind::LBracket)) {
    if (Ty.isPointer())
      Diags.error(Loc, "arrays of pointers are not supported");
    if (Tok.is(TokenKind::IntLiteral)) {
      int64_t N = Tok.IntValue;
      consume();
      if (N <= 0)
        Diags.error(Loc, "array size must be positive");
      else
        Ty = Type::arrayTy(static_cast<uint32_t>(N));
    } else {
      Diags.error(Tok.Loc, "expected array size literal");
    }
    expect(TokenKind::RBracket, "after array size");
  }
  VarDecl *G = TU->addGlobal(std::move(Name), Ty, Loc);
  declareVar(G);
  expect(TokenKind::Semi, "after global declaration");
}

/// function-rest := '(' params? ')' block
void Parser::parseFunctionRest(Type ReturnTy, std::string Name,
                               SourceLoc Loc) {
  if (TU->findFunction(Name))
    Diags.error(Loc, formatString("redefinition of function '%s'",
                                  Name.c_str()));
  FunctionDecl *F = TU->addFunction(std::move(Name), ReturnTy, Loc);
  CurFunction = F;
  expect(TokenKind::LParen, "after function name");
  pushScope(); // Parameter + body scope.
  if (!Tok.is(TokenKind::RParen)) {
    do {
      SourceLoc PLoc = Tok.Loc;
      Type PTy = parseTypePrefix(/*AllowVoid=*/false);
      std::string PName = Tok.Text;
      if (!expect(TokenKind::Identifier, "in parameter"))
        break;
      VarDecl *P = F->addParam(std::move(PName), PTy, PLoc);
      declareVar(P);
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameters");
  if (Tok.is(TokenKind::LBrace))
    F->setBody(parseBlock());
  else
    Diags.error(Tok.Loc, "expected function body");
  popScope();
  CurFunction = nullptr;
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  expect(TokenKind::LBrace, "to start block");
  auto Block = std::make_unique<BlockStmt>(Loc);
  pushScope();
  while (!Tok.is(TokenKind::RBrace) && !Tok.is(TokenKind::Eof)) {
    if (auto S = parseStmt())
      Block->addStmt(std::move(S));
    else
      consume(); // Error recovery: skip one token and retry.
  }
  popScope();
  expect(TokenKind::RBrace, "to end block");
  return Block;
}

std::unique_ptr<Stmt> Parser::parseStmt() {
  switch (Tok.Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwInt:
    return parseDeclStmt();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn: {
    SourceLoc Loc = Tok.Loc;
    consume();
    std::unique_ptr<Expr> Value;
    if (!Tok.is(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return");
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }
  case TokenKind::KwBreak: {
    SourceLoc Loc = Tok.Loc;
    consume();
    expect(TokenKind::Semi, "after break");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = Tok.Loc;
    consume();
    expect(TokenKind::Semi, "after continue");
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokenKind::Semi: {
    // Empty statement: model as an empty block.
    SourceLoc Loc = Tok.Loc;
    consume();
    return std::make_unique<BlockStmt>(Loc);
  }
  default: {
    auto S = parseSimpleStmt();
    expect(TokenKind::Semi, "after statement");
    return S;
  }
  }
}

/// decl-stmt := 'int' '*'? identifier ('[' literal ']')? ('=' expr)? ';'
std::unique_ptr<Stmt> Parser::parseDeclStmt() {
  SourceLoc Loc = Tok.Loc;
  Type Ty = parseTypePrefix(/*AllowVoid=*/false);
  std::string Name = Tok.Text;
  if (!expect(TokenKind::Identifier, "in declaration"))
    return nullptr;
  if (accept(TokenKind::LBracket)) {
    if (Ty.isPointer())
      Diags.error(Loc, "arrays of pointers are not supported");
    if (Tok.is(TokenKind::IntLiteral)) {
      int64_t N = Tok.IntValue;
      consume();
      if (N <= 0)
        Diags.error(Loc, "array size must be positive");
      else
        Ty = Type::arrayTy(static_cast<uint32_t>(N));
    } else {
      Diags.error(Tok.Loc, "expected array size literal");
    }
    expect(TokenKind::RBracket, "after array size");
  }
  auto Decl = std::make_unique<VarDecl>(std::move(Name), Ty,
                                        StorageKind::Local, Loc);
  if (accept(TokenKind::Assign)) {
    if (Ty.isArray())
      Diags.error(Loc, "array initializers are not supported");
    Decl->setInit(parseExpr());
  }
  expect(TokenKind::Semi, "after declaration");
  declareVar(Decl.get());
  return std::make_unique<DeclStmt>(std::move(Decl), Loc);
}

/// simple-stmt := lvalue '=' expr | expr   (no trailing ';' consumed)
std::unique_ptr<Stmt> Parser::parseSimpleStmt() {
  SourceLoc Loc = Tok.Loc;
  auto LHS = parseExpr();
  if (!LHS)
    return nullptr;
  if (accept(TokenKind::Assign)) {
    auto RHS = parseExpr();
    return std::make_unique<AssignStmt>(std::move(LHS), std::move(RHS), Loc);
  }
  return std::make_unique<ExprStmt>(std::move(LHS), Loc);
}

std::unique_ptr<Stmt> Parser::parseIf() {
  SourceLoc Loc = Tok.Loc;
  consume();
  expect(TokenKind::LParen, "after 'if'");
  auto Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  auto Then = parseStmt();
  std::unique_ptr<Stmt> Else;
  if (accept(TokenKind::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

std::unique_ptr<Stmt> Parser::parseWhile() {
  SourceLoc Loc = Tok.Loc;
  consume();
  expect(TokenKind::LParen, "after 'while'");
  auto Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  auto Body = parseStmt();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

std::unique_ptr<Stmt> Parser::parseDoWhile() {
  SourceLoc Loc = Tok.Loc;
  consume();
  auto Body = parseStmt();
  expect(TokenKind::KwWhile, "after do-body");
  expect(TokenKind::LParen, "after 'while'");
  auto Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  expect(TokenKind::Semi, "after do/while");
  return std::make_unique<DoWhileStmt>(std::move(Body), std::move(Cond),
                                       Loc);
}

/// for := 'for' '(' simple-stmt? ';' expr? ';' simple-stmt? ')' stmt
std::unique_ptr<Stmt> Parser::parseFor() {
  SourceLoc Loc = Tok.Loc;
  consume();
  expect(TokenKind::LParen, "after 'for'");
  std::unique_ptr<Stmt> Init;
  if (!Tok.is(TokenKind::Semi))
    Init = parseSimpleStmt();
  expect(TokenKind::Semi, "after for-init");
  std::unique_ptr<Expr> Cond;
  if (!Tok.is(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for-condition");
  std::unique_ptr<Stmt> Step;
  if (!Tok.is(TokenKind::RParen))
    Step = parseSimpleStmt();
  expect(TokenKind::RParen, "after for-step");
  auto Body = parseStmt();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions (precedence climbing)
//===----------------------------------------------------------------------===//

namespace {
struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};
} // namespace

/// Returns precedence info for the binary operator starting at \p Kind, or
/// precedence -1 if \p Kind is not a binary operator.
static BinOpInfo binOpInfo(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Star:
    return {BinaryOp::Mul, 10};
  case TokenKind::Slash:
    return {BinaryOp::Div, 10};
  case TokenKind::Percent:
    return {BinaryOp::Rem, 10};
  case TokenKind::Plus:
    return {BinaryOp::Add, 9};
  case TokenKind::Minus:
    return {BinaryOp::Sub, 9};
  case TokenKind::LessLess:
    return {BinaryOp::Shl, 8};
  case TokenKind::GreaterGreater:
    return {BinaryOp::Shr, 8};
  case TokenKind::Less:
    return {BinaryOp::Lt, 7};
  case TokenKind::LessEqual:
    return {BinaryOp::Le, 7};
  case TokenKind::Greater:
    return {BinaryOp::Gt, 7};
  case TokenKind::GreaterEqual:
    return {BinaryOp::Ge, 7};
  case TokenKind::EqualEqual:
    return {BinaryOp::Eq, 6};
  case TokenKind::BangEqual:
    return {BinaryOp::Ne, 6};
  case TokenKind::Amp:
    return {BinaryOp::And, 5};
  case TokenKind::Caret:
    return {BinaryOp::Xor, 4};
  case TokenKind::Pipe:
    return {BinaryOp::Or, 3};
  case TokenKind::AmpAmp:
    return {BinaryOp::LogicalAnd, 2};
  case TokenKind::PipePipe:
    return {BinaryOp::LogicalOr, 1};
  default:
    return {BinaryOp::Add, -1};
  }
}

std::unique_ptr<Expr> Parser::parseExpr() {
  auto LHS = parseUnary();
  if (!LHS)
    return nullptr;
  return parseBinaryRHS(1, std::move(LHS));
}

std::unique_ptr<Expr> Parser::parseBinaryRHS(int MinPrec,
                                             std::unique_ptr<Expr> LHS) {
  for (;;) {
    BinOpInfo Info = binOpInfo(Tok.Kind);
    if (Info.Prec < MinPrec)
      return LHS;
    SourceLoc Loc = Tok.Loc;
    consume();
    auto RHS = parseUnary();
    if (!RHS)
      return LHS;
    BinOpInfo Next = binOpInfo(Tok.Kind);
    if (Next.Prec > Info.Prec)
      RHS = parseBinaryRHS(Info.Prec + 1, std::move(RHS));
    LHS = std::make_unique<BinaryExpr>(Info.Op, std::move(LHS),
                                       std::move(RHS), Loc);
  }
}

std::unique_ptr<Expr> Parser::parseUnary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::Minus:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  case TokenKind::Bang:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::LogicalNot, parseUnary(),
                                       Loc);
  case TokenKind::Tilde:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary(), Loc);
  case TokenKind::Star:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::Deref, parseUnary(), Loc);
  case TokenKind::Amp:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::AddrOf, parseUnary(), Loc);
  default:
    return parsePostfix();
  }
}

std::unique_ptr<Expr> Parser::parsePostfix() {
  auto E = parsePrimary();
  while (E && Tok.is(TokenKind::LBracket)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    auto Index = parseExpr();
    expect(TokenKind::RBracket, "after subscript");
    E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
  }
  return E;
}

std::unique_ptr<Expr> Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::IntLiteral: {
    int64_t Value = Tok.IntValue;
    consume();
    return std::make_unique<IntLiteralExpr>(Value, Loc);
  }
  case TokenKind::LParen: {
    consume();
    auto E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  case TokenKind::Identifier: {
    std::string Name = Tok.Text;
    consume();
    if (Tok.is(TokenKind::LParen)) {
      // Call: builtin or user function.
      consume();
      std::vector<std::unique_ptr<Expr>> Args;
      if (!Tok.is(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      if (Name == "print")
        return std::make_unique<CallExpr>(nullptr, BuiltinKind::Print,
                                          std::move(Args), Loc);
      FunctionDecl *Callee = TU->findFunction(Name);
      if (!Callee && CurFunction && CurFunction->name() == Name)
        Callee = CurFunction;
      if (!Callee) {
        Diags.error(Loc, formatString("call to undeclared function '%s'",
                                      Name.c_str()));
        return std::make_unique<IntLiteralExpr>(0, Loc);
      }
      return std::make_unique<CallExpr>(Callee, BuiltinKind::None,
                                        std::move(Args), Loc);
    }
    VarDecl *Decl = lookupVar(Name);
    if (!Decl) {
      Diags.error(Loc,
                  formatString("use of undeclared variable '%s'",
                               Name.c_str()));
      return std::make_unique<IntLiteralExpr>(0, Loc);
    }
    return std::make_unique<VarRefExpr>(Decl, Loc);
  }
  default:
    Diags.error(Loc, formatString("expected expression, found %s",
                                  tokenKindName(Tok.Kind)));
    return nullptr;
  }
}

std::unique_ptr<TranslationUnit> urcm::parseMC(const std::string &Source,
                                               DiagnosticEngine &Diags) {
  Parser P(Source, Diags);
  return P.parse();
}
