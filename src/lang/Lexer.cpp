//===- Lexer.cpp - MC lexer -----------------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/lang/Lexer.h"

#include "urcm/support/StringUtils.h"

#include <cctype>
#include <unordered_map>

using namespace urcm;

const char *urcm::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  }
  return "unknown";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  return Index < Source.size() ? Source[Index] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      bool Closed = false;
      while (peek() != '\0') {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();

  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},           {"void", TokenKind::KwVoid},
      {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},       {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},     {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"do", TokenKind::KwDo},
  };
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc);

  Token T = makeToken(TokenKind::Identifier, Loc);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  int64_t Value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    bool AnyDigit = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char C = advance();
      int Digit = std::isdigit(static_cast<unsigned char>(C))
                      ? C - '0'
                      : std::tolower(static_cast<unsigned char>(C)) - 'a' + 10;
      Value = Value * 16 + Digit;
      AnyDigit = true;
    }
    if (!AnyDigit)
      Diags.error(Loc, "hexadecimal literal has no digits");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
  }
  Token T = makeToken(TokenKind::IntLiteral, Loc);
  T.IntValue = Value;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = currentLoc();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Loc);

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Loc);
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Loc);
  case '^':
    return makeToken(TokenKind::Caret, Loc);
  case '~':
    return makeToken(TokenKind::Tilde, Loc);
  case '&':
    return makeToken(match('&') ? TokenKind::AmpAmp : TokenKind::Amp, Loc);
  case '|':
    return makeToken(match('|') ? TokenKind::PipePipe : TokenKind::Pipe, Loc);
  case '!':
    return makeToken(match('=') ? TokenKind::BangEqual : TokenKind::Bang, Loc);
  case '=':
    return makeToken(match('=') ? TokenKind::EqualEqual : TokenKind::Assign,
                     Loc);
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc);
    if (match('<'))
      return makeToken(TokenKind::LessLess, Loc);
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc);
    if (match('>'))
      return makeToken(TokenKind::GreaterGreater, Loc);
    return makeToken(TokenKind::Greater, Loc);
  default:
    Diags.error(Loc, formatString("unexpected character '%c'", C));
    return next();
  }
}

std::vector<Token> urcm::lexAll(const std::string &Source,
                                DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  std::vector<Token> Tokens;
  for (;;) {
    Token T = L.next();
    bool IsEof = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (IsEof)
      break;
  }
  return Tokens;
}
