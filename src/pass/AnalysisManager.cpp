//===- AnalysisManager.cpp - Cached analysis results ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/pass/AnalysisManager.h"

#include "urcm/support/Telemetry.h"

using namespace urcm;

URCM_STAT(NumAnalysisHits, "pass.analysis.hits",
          "Analysis queries answered from the cache");
URCM_STAT(NumAnalysisMisses, "pass.analysis.misses",
          "Analysis queries that computed a fresh result");
URCM_STAT(NumAnalysisInvalidations, "pass.analysis.invalidations",
          "Cached analysis results dropped by invalidation");

void pass_detail::countHit() { NumAnalysisHits.add(); }
void pass_detail::countMiss() { NumAnalysisMisses.add(); }
void pass_detail::countInvalidations(uint64_t N) {
  NumAnalysisInvalidations.add(N);
}

void AnalysisManager::invalidateImpl(const IRFunction *F,
                                     const PreservedAnalyses &PA) {
  if (PA.areAllPreserved() || Cache.empty())
    return;

  // Seed: unpreserved entries of the mutated function, plus unpreserved
  // module-level entries (the module contains the mutated function).
  // F == nullptr means a module-wide invalidation.
  std::vector<EntryId> Dead;
  auto IsDead = [&](const EntryId &Id) {
    for (const EntryId &D : Dead)
      if (D == Id)
        return true;
    return false;
  };
  for (const auto &[Id, E] : Cache) {
    bool InScope = F == nullptr || Id.F == nullptr || Id.F == F;
    if (InScope && !PA.isPreserved(Id.Key))
      Dead.push_back(Id);
  }

  // Propagate: anything that depended on a dead entry dies too, even if
  // nominally preserved — its result may hold references into the dead
  // one (e.g. DominatorTree into CFGInfo).
  bool Changed = !Dead.empty();
  while (Changed) {
    Changed = false;
    for (const auto &[Id, E] : Cache) {
      if (IsDead(Id))
        continue;
      for (const EntryId &Dep : E.Deps)
        if (IsDead(Dep)) {
          Dead.push_back(Id);
          Changed = true;
          break;
        }
    }
  }

  for (const EntryId &Id : Dead)
    Cache.erase(Id);
  Stats.Invalidations += Dead.size();
  pass_detail::countInvalidations(Dead.size());
}
