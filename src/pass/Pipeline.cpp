//===- Pipeline.cpp - Textual pipeline descriptions ----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/pass/Pipeline.h"

#include "urcm/pass/Passes.h"

using namespace urcm;

namespace {

std::unique_ptr<Pass> createPassByName(const std::string &Name) {
  if (Name == "verify")
    return createVerifyPass();
  if (Name == "promote")
    return createPromotePass();
  if (Name == "cleanup")
    return createCleanupPass();
  if (Name == "copyprop")
    return createCopyPropPass();
  if (Name == "lvn")
    return createValueNumberingPass();
  if (Name == "dce")
    return createDCEPass();
  if (Name == "dse")
    return createDSEPass();
  if (Name == "regalloc")
    return createRegAllocPass();
  if (Name == "unified")
    return createUnifiedManagementPass();
  if (Name == "codegen")
    return createCodeGenPass();
  return nullptr;
}

} // namespace

bool urcm::parsePassPipeline(PassManager &PM, const std::string &Text,
                             std::string &Error) {
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Name = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name.empty()) {
      Error = "empty pass name";
      return false;
    }
    std::unique_ptr<Pass> P = createPassByName(Name);
    if (!P) {
      Error = "unknown pass '" + Name + "'";
      return false;
    }
    PM.add(std::move(P));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  if (PM.empty()) {
    Error = "empty pipeline";
    return false;
  }
  return true;
}

std::string urcm::defaultPipelineText(bool Promote, bool Cleanup) {
  std::string Text;
  if (Promote)
    Text += "promote,";
  if (Cleanup)
    Text += "cleanup,";
  Text += "regalloc,unified,codegen";
  return Text;
}
