//===- PassManager.cpp - Pass sequencing and instrumentation -------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/pass/Pass.h"

#include "urcm/ir/Verifier.h"
#include "urcm/pass/Passes.h"
#include "urcm/support/Telemetry.h"

#include <cassert>
#include <cstdio>

using namespace urcm;

URCM_STAT(NumPassRuns, "pass.runs", "Passes executed by the pass manager");

std::string PassManager::str() const {
  std::string Text;
  for (const auto &P : Passes) {
    if (!Text.empty())
      Text += ',';
    Text += P->name();
  }
  return Text;
}

namespace {

/// Module verification in its own span so trace views separate checking
/// time from transformation time.
bool verifyTimed(const IRModule &M, DiagnosticEngine &Diags) {
  telemetry::ScopedPhase Phase("compile.verify");
  return verifyModule(M, Diags);
}

} // namespace

bool PassManager::run(IRModule &M, AnalysisManager &AM,
                      PipelineState &State) {
  assert((!Instr.VerifyEach || Instr.Diags) &&
         "VerifyEach instrumentation needs a DiagnosticEngine");

  if (Instr.VerifyEach && !verifyTimed(M, *Instr.Diags))
    return false;

  for (const auto &P : Passes) {
    PreservedAnalyses PA;
    {
      telemetry::ScopedPhase Span(P->phaseName());
      PA = P->run(M, AM, State);
    }
    NumPassRuns.add();
    if (State.Failed)
      return false;
    AM.invalidate(PA);

    if (Instr.PrintAfterAll) {
      std::fprintf(stderr, "; IR after %s\n%s", P->name(),
                   printIR(M).c_str());
    }
    // Re-verify exactly where the old driver did: after every pass that
    // could have changed the module.
    if (Instr.VerifyEach && !PA.areAllPreserved() &&
        !verifyTimed(M, *Instr.Diags))
      return false;
  }
  return true;
}
