//===- Passes.cpp - Concrete pipeline passes -----------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/pass/Passes.h"

#include "urcm/ir/Verifier.h"
#include "urcm/pass/Analyses.h"
#include "urcm/transforms/ValueNumbering.h"

#include <cassert>

using namespace urcm;

namespace {

/// The contract shared by every pass that rewrites instructions without
/// touching block structure: edges, dominators and loops survive.
PreservedAnalyses preserveCFG() {
  PreservedAnalyses PA;
  PA.preserve<CFGAnalysis>()
      .preserve<DominatorTreeAnalysis>()
      .preserve<LoopAnalysis>();
  return PA;
}

class VerifyPass final : public Pass {
public:
  const char *name() const override { return "verify"; }
  const char *phaseName() const override { return "pass.verify"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &,
                        PipelineState &State) override {
    assert(State.Diags && "verify pass needs a DiagnosticEngine");
    if (!verifyModule(M, *State.Diags))
      State.Failed = true;
    return PreservedAnalyses::all();
  }
};

class PromotePass final : public Pass {
public:
  const char *name() const override { return "promote"; }
  const char *phaseName() const override { return "pass.promote"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    LoopPromotionStats S = promoteLoopScalars(M, AM);
    State.Promotion.PromotedLocations += S.PromotedLocations;
    State.Promotion.RewrittenRefs += S.RewrittenRefs;
    State.Promotion.PreheadersCreated += S.PreheadersCreated;
    State.Promotion.ExitStoresInserted += S.ExitStoresInserted;
    // Promotion splits edges and adds preheaders: CFG-derived results
    // are gone too.
    return S.PreheadersCreated == 0 ? PreservedAnalyses::all()
                                    : PreservedAnalyses::none();
  }
};

class CleanupPass final : public Pass {
public:
  const char *name() const override { return "cleanup"; }
  const char *phaseName() const override { return "pass.cleanup"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    TransformStats S = runCleanupPipeline(M, State.Transforms, AM);
    uint64_t Changes = S.CopiesPropagated + S.RedundantComputations +
                       S.ForwardedLoads + S.DeadInstsRemoved +
                       S.DeadStoresRemoved;
    State.Cleanup.CopiesPropagated += S.CopiesPropagated;
    State.Cleanup.RedundantComputations += S.RedundantComputations;
    State.Cleanup.ForwardedLoads += S.ForwardedLoads;
    State.Cleanup.DeadInstsRemoved += S.DeadInstsRemoved;
    State.Cleanup.DeadStoresRemoved += S.DeadStoresRemoved;
    return Changes == 0 ? PreservedAnalyses::all() : preserveCFG();
  }
};

/// Single-shot variants of the cleanup sub-passes, for hand-written
/// --passes= pipelines.
class CopyPropPass final : public Pass {
public:
  const char *name() const override { return "copyprop"; }
  const char *phaseName() const override { return "pass.copyprop"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    uint64_t Changes = 0;
    for (const auto &F : M.functions()) {
      uint64_t N = propagateCopies(*F);
      if (N != 0)
        AM.invalidate(*F, preserveCFG());
      Changes += N;
    }
    State.Cleanup.CopiesPropagated += Changes;
    return Changes == 0 ? PreservedAnalyses::all() : preserveCFG();
  }
};

class ValueNumberingPass final : public Pass {
public:
  const char *name() const override { return "lvn"; }
  const char *phaseName() const override { return "pass.lvn"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    uint64_t Changes = 0;
    for (const auto &F : M.functions()) {
      ValueNumberingStats S =
          numberValues(M, *F, AM.get<AliasAnalysisInfo>(*F));
      uint64_t N = S.RedundantComputations + S.ForwardedLoads;
      if (N != 0)
        AM.invalidate(*F, preserveCFG());
      State.Cleanup.RedundantComputations += S.RedundantComputations;
      State.Cleanup.ForwardedLoads += S.ForwardedLoads;
      Changes += N;
    }
    return Changes == 0 ? PreservedAnalyses::all() : preserveCFG();
  }
};

class DCEPass final : public Pass {
public:
  const char *name() const override { return "dce"; }
  const char *phaseName() const override { return "pass.dce"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    uint64_t Changes = 0;
    for (const auto &F : M.functions()) {
      uint64_t N = eliminateDeadCode(*F);
      if (N != 0)
        AM.invalidate(*F, preserveCFG());
      Changes += N;
    }
    State.Cleanup.DeadInstsRemoved += Changes;
    return Changes == 0 ? PreservedAnalyses::all() : preserveCFG();
  }
};

class DSEPass final : public Pass {
public:
  const char *name() const override { return "dse"; }
  const char *phaseName() const override { return "pass.dse"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    uint64_t Changes = 0;
    for (const auto &F : M.functions()) {
      uint64_t N = eliminateDeadStores(
          M, *F, AM.get<MemoryLivenessAnalysis>(*F));
      if (N != 0)
        AM.invalidate(*F, preserveCFG());
      Changes += N;
    }
    State.Cleanup.DeadStoresRemoved += Changes;
    return Changes == 0 ? PreservedAnalyses::all() : preserveCFG();
  }
};

class RegAllocPass final : public Pass {
public:
  const char *name() const override { return "regalloc"; }
  const char *phaseName() const override { return "pass.regalloc"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    State.Alloc = allocateRegisters(M, State.RegAlloc, AM);
    // Registers are renamed and spill code inserted; block structure is
    // untouched.
    return preserveCFG();
  }
};

class UnifiedManagementPass final : public Pass {
public:
  const char *name() const override { return "unified"; }
  const char *phaseName() const override { return "pass.unified"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                        PipelineState &State) override {
    State.Static = applyUnifiedManagement(M, State.Scheme, AM);
    // Only MemInfo hint bits change; no analysis reads them.
    return PreservedAnalyses::all();
  }
};

class CodeGenPass final : public Pass {
public:
  const char *name() const override { return "codegen"; }
  const char *phaseName() const override { return "pass.codegen"; }
  PreservedAnalyses run(IRModule &M, AnalysisManager &,
                        PipelineState &State) override {
    State.Program = generateMachineCode(M, State.CodeGen);
    State.CodeGenRan = true;
    return PreservedAnalyses::all();
  }
};

} // namespace

std::unique_ptr<Pass> urcm::createVerifyPass() {
  return std::make_unique<VerifyPass>();
}
std::unique_ptr<Pass> urcm::createPromotePass() {
  return std::make_unique<PromotePass>();
}
std::unique_ptr<Pass> urcm::createCleanupPass() {
  return std::make_unique<CleanupPass>();
}
std::unique_ptr<Pass> urcm::createCopyPropPass() {
  return std::make_unique<CopyPropPass>();
}
std::unique_ptr<Pass> urcm::createValueNumberingPass() {
  return std::make_unique<ValueNumberingPass>();
}
std::unique_ptr<Pass> urcm::createDCEPass() {
  return std::make_unique<DCEPass>();
}
std::unique_ptr<Pass> urcm::createDSEPass() {
  return std::make_unique<DSEPass>();
}
std::unique_ptr<Pass> urcm::createRegAllocPass() {
  return std::make_unique<RegAllocPass>();
}
std::unique_ptr<Pass> urcm::createUnifiedManagementPass() {
  return std::make_unique<UnifiedManagementPass>();
}
std::unique_ptr<Pass> urcm::createCodeGenPass() {
  return std::make_unique<CodeGenPass>();
}
