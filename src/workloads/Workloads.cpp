//===- Workloads.cpp - Paper benchmarks ----------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/workloads/Workloads.h"

using namespace urcm;

namespace {

// Bubble: bubble sort of 500 pseudo-random elements (paper: "executed on
// a set of 500 random data"). The LCG is written in MC so the data is
// identical everywhere. Prints an is-sorted flag (expected 1), the
// first/last elements and a checksum.
const char *BubbleSource = R"mc(
int a[500];
int n;

void init() {
  int i;
  int seed = 12345;
  for (i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = -seed; }
    a[i] = seed % 10000;
  }
}

void bubble() {
  int i;
  int j;
  int t;
  for (i = 0; i < n - 1; i = i + 1) {
    for (j = 0; j < n - 1 - i; j = j + 1) {
      if (a[j] > a[j + 1]) {
        t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
    }
  }
}

int sorted() {
  int i;
  for (i = 0; i < n - 1; i = i + 1) {
    if (a[i] > a[i + 1]) { return 0; }
  }
  return 1;
}

int checksum() {
  int i;
  int sum = 0;
  for (i = 0; i < n; i = i + 1) {
    sum = sum + a[i] * (i + 1);
  }
  return sum;
}

void main() {
  n = 500;
  init();
  bubble();
  print(sorted());
  print(a[0]);
  print(a[n - 1]);
  print(checksum());
}
)mc";

// Intmm: 40x40 integer matrix multiply (flattened 2-D arrays). Prints the
// corner elements and the full checksum.
const char *IntmmSource = R"mc(
int ma[1600];
int mb[1600];
int mc[1600];

void initmatrices() {
  int i;
  int j;
  for (i = 0; i < 40; i = i + 1) {
    for (j = 0; j < 40; j = j + 1) {
      ma[i * 40 + j] = (i + 2 * j) % 100 - 50;
      mb[i * 40 + j] = (3 * i + j) % 100 - 50;
    }
  }
}

void intmm() {
  int i;
  int j;
  int k;
  int sum;
  for (i = 0; i < 40; i = i + 1) {
    for (j = 0; j < 40; j = j + 1) {
      sum = 0;
      for (k = 0; k < 40; k = k + 1) {
        sum = sum + ma[i * 40 + k] * mb[k * 40 + j];
      }
      mc[i * 40 + j] = sum;
    }
  }
}

int checksum() {
  int i;
  int sum = 0;
  for (i = 0; i < 1600; i = i + 1) {
    sum = sum + mc[i];
  }
  return sum;
}

void main() {
  initmatrices();
  intmm();
  print(mc[0]);
  print(mc[1599]);
  print(checksum());
}
)mc";

// Puzzle: Forest Baskett's 3-D packing puzzle (Stanford suite), size 511,
// d = 8, 13 pieces in 4 classes. Recursion + heavy array traffic. Prints
// the number of trial() activations (kount) and a success flag.
const char *PuzzleSource = R"mc(
int puzzl[512];
int p[6656];
int class[13];
int piecemax[13];
int piececount[4];
int kount;

int fit(int i, int j) {
  int k;
  for (k = 0; k <= piecemax[i]; k = k + 1) {
    if (p[i * 512 + k]) {
      if (puzzl[j + k]) { return 0; }
    }
  }
  return 1;
}

int place(int i, int j) {
  int k;
  for (k = 0; k <= piecemax[i]; k = k + 1) {
    if (p[i * 512 + k]) { puzzl[j + k] = 1; }
  }
  piececount[class[i]] = piececount[class[i]] - 1;
  for (k = j; k <= 511; k = k + 1) {
    if (!puzzl[k]) { return k; }
  }
  return 0;
}

void removepiece(int i, int j) {
  int k;
  for (k = 0; k <= piecemax[i]; k = k + 1) {
    if (p[i * 512 + k]) { puzzl[j + k] = 0; }
  }
  piececount[class[i]] = piececount[class[i]] + 1;
}

int trial(int j) {
  int i;
  int k;
  kount = kount + 1;
  for (i = 0; i <= 12; i = i + 1) {
    if (piececount[class[i]] != 0) {
      if (fit(i, j)) {
        k = place(i, j);
        if (trial(k) || k == 0) {
          return 1;
        } else {
          removepiece(i, j);
        }
      }
    }
  }
  return 0;
}

void definepiece(int index, int cl, int di, int dj, int dk) {
  int i;
  int j;
  int k;
  for (i = 0; i <= di; i = i + 1) {
    for (j = 0; j <= dj; j = j + 1) {
      for (k = 0; k <= dk; k = k + 1) {
        p[index * 512 + i + 8 * (j + 8 * k)] = 1;
      }
    }
  }
  class[index] = cl;
  piecemax[index] = di + 8 * (dj + 8 * dk);
}

void main() {
  int i;
  int j;
  int k;
  int m;
  int n;

  for (m = 0; m <= 511; m = m + 1) { puzzl[m] = 1; }
  for (i = 1; i <= 5; i = i + 1) {
    for (j = 1; j <= 5; j = j + 1) {
      for (k = 1; k <= 5; k = k + 1) {
        puzzl[i + 8 * (j + 8 * k)] = 0;
      }
    }
  }
  for (i = 0; i <= 12; i = i + 1) {
    for (m = 0; m <= 511; m = m + 1) {
      p[i * 512 + m] = 0;
    }
  }

  definepiece(0, 0, 3, 1, 0);
  definepiece(1, 0, 1, 0, 3);
  definepiece(2, 0, 0, 3, 1);
  definepiece(3, 0, 1, 3, 0);
  definepiece(4, 0, 3, 0, 1);
  definepiece(5, 0, 0, 1, 3);
  definepiece(6, 1, 2, 0, 0);
  definepiece(7, 1, 0, 2, 0);
  definepiece(8, 1, 0, 0, 2);
  definepiece(9, 2, 1, 1, 0);
  definepiece(10, 2, 1, 0, 1);
  definepiece(11, 2, 0, 1, 1);
  definepiece(12, 3, 1, 1, 1);

  piececount[0] = 13;
  piececount[1] = 3;
  piececount[2] = 1;
  piececount[3] = 1;

  m = 1 + 8 * (1 + 8 * 1);
  kount = 0;
  if (fit(0, m)) {
    n = place(0, m);
    if (trial(n)) {
      print(1);
    } else {
      print(0);
    }
  } else {
    print(0 - 1);
  }
  print(kount);
}
)mc";

// Queen: count all solutions of the 8-queens problem (92). Column/
// diagonal occupancy arrays give the ambiguous traffic; recursion gives
// the spill traffic.
const char *QueenSource = R"mc(
int col[8];
int diag1[15];
int diag2[15];
int solutions;

void solve(int row) {
  int c;
  if (row == 8) {
    solutions = solutions + 1;
    return;
  }
  for (c = 0; c < 8; c = c + 1) {
    if (!col[c] && !diag1[row + c] && !diag2[row - c + 7]) {
      col[c] = 1;
      diag1[row + c] = 1;
      diag2[row - c + 7] = 1;
      solve(row + 1);
      col[c] = 0;
      diag1[row + c] = 0;
      diag2[row - c + 7] = 0;
    }
  }
}

void main() {
  solutions = 0;
  solve(0);
  print(solutions);
}
)mc";

// Sieve: primes in [0, 8190] by the sieve of Eratosthenes. Prints the
// count and the largest prime found.
const char *SieveSource = R"mc(
int flags[8191];

void main() {
  int i;
  int k;
  int count;
  int largest;

  for (i = 0; i <= 8190; i = i + 1) { flags[i] = 1; }
  flags[0] = 0;
  flags[1] = 0;
  for (i = 2; i * i <= 8190; i = i + 1) {
    if (flags[i]) {
      for (k = i * i; k <= 8190; k = k + i) {
        flags[k] = 0;
      }
    }
  }
  count = 0;
  largest = 0;
  for (i = 0; i <= 8190; i = i + 1) {
    if (flags[i]) {
      count = count + 1;
      largest = i;
    }
  }
  print(count);
  print(largest);
}
)mc";

// Towers: towers of Hanoi with 18 disks and explicit peg arrays (the
// Stanford flavor: array pushes/pops rather than pure recursion). Prints
// the move count (2^18 - 1 = 262143) and a consistency flag.
const char *TowersSource = R"mc(
int stack[60];
int top[3];
int moves;

void push(int peg, int disk) {
  stack[peg * 20 + top[peg]] = disk;
  top[peg] = top[peg] + 1;
}

int pop(int peg) {
  top[peg] = top[peg] - 1;
  return stack[peg * 20 + top[peg]];
}

void movedisk(int from, int to) {
  int d;
  d = pop(from);
  push(to, d);
  moves = moves + 1;
}

void hanoi(int n, int from, int to, int via) {
  if (n == 0) { return; }
  hanoi(n - 1, from, via, to);
  movedisk(from, to);
  hanoi(n - 1, via, to, from);
}

void main() {
  int i;
  moves = 0;
  top[0] = 0;
  top[1] = 0;
  top[2] = 0;
  for (i = 18; i >= 1; i = i - 1) {
    push(0, i);
  }
  hanoi(18, 0, 2, 1);
  print(moves);
  print(top[2]);
  print(top[0] + top[1]);
}
)mc";

// Quick: recursive quicksort over 1000 LCG-random elements (Stanford
// suite). Heavy recursion + array traffic; prints an is-sorted flag and
// a checksum.
const char *QuickSource = R"mc(
int a[1000];
int n;

void init() {
  int i;
  int seed = 74755;
  for (i = 0; i < n; i = i + 1) {
    seed = (seed * 1309 + 13849) % 65536;
    a[i] = seed;
  }
}

void quicksort(int lo, int hi) {
  int i;
  int j;
  int pivot;
  int t;
  i = lo;
  j = hi;
  pivot = a[(lo + hi) / 2];
  while (i <= j) {
    while (a[i] < pivot) { i = i + 1; }
    while (pivot < a[j]) { j = j - 1; }
    if (i <= j) {
      t = a[i];
      a[i] = a[j];
      a[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  if (lo < j) { quicksort(lo, j); }
  if (i < hi) { quicksort(i, hi); }
}

int sorted() {
  int i;
  for (i = 0; i < n - 1; i = i + 1) {
    if (a[i] > a[i + 1]) { return 0; }
  }
  return 1;
}

int checksum() {
  int i;
  int sum = 0;
  for (i = 0; i < n; i = i + 1) {
    sum = sum + a[i] * (i % 7 + 1);
  }
  return sum;
}

void main() {
  n = 1000;
  init();
  quicksort(0, n - 1);
  print(sorted());
  print(a[0]);
  print(a[n - 1]);
  print(checksum());
}
)mc";

// Perm: the Stanford permutation benchmark — repeatedly generates all
// permutations of 7 elements by recursive swapping, counting calls.
const char *PermSource = R"mc(
int permarray[8];
int pctr;

void swapelements(int i, int j) {
  int t;
  t = permarray[i];
  permarray[i] = permarray[j];
  permarray[j] = t;
}

void permute(int n) {
  int k;
  pctr = pctr + 1;
  if (n != 1) {
    permute(n - 1);
    for (k = n - 1; k >= 1; k = k - 1) {
      swapelements(n - 1, k - 1);
      permute(n - 1);
      swapelements(n - 1, k - 1);
    }
  }
}

void main() {
  int i;
  int trial;
  pctr = 0;
  for (trial = 0; trial < 5; trial = trial + 1) {
    for (i = 0; i < 8; i = i + 1) {
      permarray[i] = i;
    }
    permute(7);
  }
  print(pctr);
  print(permarray[0] + permarray[7]);
}
)mc";

} // namespace

const std::vector<Workload> &urcm::extendedWorkloads() {
  static const std::vector<Workload> Workloads = [] {
    std::vector<Workload> W;
    W.push_back({"Quick", "recursive quicksort of 1000 elements",
                 QuickSource,
                 {1}});
    // Call count: p(1)=1, p(n)=1+n*p(n-1) -> p(7)=8660; five trials =
    // 43300. The swap/permute/swap structure restores the array, so the
    // final check prints 0+7.
    W.push_back({"Perm", "Stanford permutation benchmark", PermSource,
                 {43300, 7}});
    return W;
  }();
  return Workloads;
}

const std::vector<Workload> &urcm::paperWorkloads() {
  static const std::vector<Workload> Workloads = [] {
    std::vector<Workload> W;
    W.push_back({"Bubble", "bubble sort of 500 random elements",
                 BubbleSource,
                 {1}}); // First value: is-sorted flag.
    W.push_back({"Intmm", "40x40 integer matrix multiplication",
                 IntmmSource,
                 {}});
    W.push_back({"Puzzle", "Baskett 3-D puzzle, size 511", PuzzleSource,
                 {}});
    W.push_back({"Queen", "8-queens, all solutions", QueenSource, {92}});
    // Sieve's expected output is computed by the test suite's own C++
    // sieve rather than hard-coded.
    W.push_back({"Sieve", "primes in [0, 8190]", SieveSource, {}});
    W.push_back({"Towers", "towers of Hanoi, 18 disks", TowersSource,
                 {262143, 18, 0}});
    return W;
  }();
  return Workloads;
}

const Workload *urcm::findWorkload(const std::string &Name) {
  for (const Workload &W : paperWorkloads())
    if (W.Name == Name)
      return &W;
  for (const Workload &W : extendedWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
