//===- RegAlloc.cpp - Register allocation over webs --------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/regalloc/RegAlloc.h"

#include "urcm/analysis/CFG.h"
#include "urcm/analysis/Liveness.h"
#include "urcm/analysis/Loops.h"
#include "urcm/analysis/ReachingDefs.h"
#include "urcm/analysis/Webs.h"
#include "urcm/pass/Analyses.h"
#include "urcm/support/StringUtils.h"
#include "urcm/support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

using namespace urcm;

URCM_STAT(NumRAFunctions, "regalloc.functions", "Functions allocated");
URCM_STAT(NumRAWebs, "regalloc.webs", "Webs presented to the allocator");
URCM_STAT(NumRASpilledWebs, "regalloc.spilled-webs", "Webs spilled to memory");
URCM_STAT(NumRASpillSlots, "regalloc.spill-slots", "Spill slots created");
URCM_STAT(NumRAIterations, "regalloc.iterations",
          "Color/spill rounds across all functions");

namespace {

/// Triangular-matrix interference graph with adjacency lists.
class InterferenceGraph {
public:
  explicit InterferenceGraph(uint32_t N)
      : N(N), Bits(static_cast<size_t>(N) * N, false), Adj(N) {}

  void addEdge(uint32_t A, uint32_t B) {
    if (A == B || Bits[index(A, B)])
      return;
    Bits[index(A, B)] = true;
    Bits[index(B, A)] = true;
    Adj[A].push_back(B);
    Adj[B].push_back(A);
  }
  bool interferes(uint32_t A, uint32_t B) const {
    return A != B && Bits[index(A, B)];
  }
  const std::vector<uint32_t> &neighbors(uint32_t A) const { return Adj[A]; }
  uint32_t degree(uint32_t A) const {
    return static_cast<uint32_t>(Adj[A].size());
  }

private:
  size_t index(uint32_t A, uint32_t B) const {
    return static_cast<size_t>(A) * N + B;
  }
  uint32_t N;
  std::vector<bool> Bits;
  std::vector<std::vector<uint32_t>> Adj;
};

class Allocator {
public:
  Allocator(IRModule &M, IRFunction &F, const RegAllocOptions &Options,
            AnalysisManager &AM)
      : M(M), F(F), Options(Options), AM(AM) {}

  RegAllocStats run() {
    assert(Options.NumColors >= 8 &&
           "need at least 8 colors for spill temporaries");
    RegAllocStats Stats;
    IsSpillTemp.assign(F.numRegs(), false);

    for (uint32_t Iter = 0; Iter != Options.MaxIterations; ++Iter) {
      Stats.Iterations = Iter + 1;
      renameWebs();
      Stats.NumWebs = F.numRegs();

      const Liveness &LV = AM.get<LivenessAnalysis>(F);
      const LoopInfo &LI = AM.get<LoopAnalysis>(F);

      InterferenceGraph IG = buildInterference(LV);
      std::vector<double> Cost = computeCosts(LI);
      std::vector<int32_t> Color =
          Options.Policy == RegAllocPolicy::ChaitinBriggs
              ? colorChaitinBriggs(IG, Cost)
              : colorUsageCount(IG, Cost);

      std::vector<uint32_t> Spilled;
      for (uint32_t W = 0; W != Color.size(); ++W)
        if (Color[W] < 0)
          Spilled.push_back(W);

      if (Spilled.empty()) {
        uint32_t Used = rewriteToColors(Color);
        AM.invalidate(F, keepBlockStructure());
        Stats.NumColorsUsed = Used;
        Stats.NumSpillSlots = countSpillSlots();
        return Stats;
      }

      Stats.NumSpilledWebs += static_cast<uint32_t>(Spilled.size());
      insertSpillCode(Spilled);
      AM.invalidate(F, keepBlockStructure());
    }
    assert(false && "register allocation did not converge");
    return Stats;
  }

private:
  //===--------------------------------------------------------------------===
  // Web renaming: after this, virtual register == web id.
  //===--------------------------------------------------------------------===

  /// Allocation renames registers and inserts spill code but never
  /// touches block structure.
  static PreservedAnalyses keepBlockStructure() {
    PreservedAnalyses PA;
    PA.preserve<CFGAnalysis>()
        .preserve<DominatorTreeAnalysis>()
        .preserve<LoopAnalysis>();
    return PA;
  }

  void renameWebs() {
    const ReachingDefs &RD = AM.get<ReachingDefsAnalysis>(F);
    const WebAnalysis &WA = AM.get<WebsAnalysis>(F);
    const auto &Webs = WA.webs();

    // Def-site (block, index) -> def id.
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> DefAt;
    for (uint32_t DefId = 0; DefId != RD.defs().size(); ++DefId) {
      const DefSite &D = RD.defs()[DefId];
      if (!D.isParam())
        DefAt[{D.Block, D.Index}] = DefId;
    }

    // Compute replacement operands before mutating anything.
    std::vector<bool> NewIsSpillTemp(Webs.size(), false);
    for (uint32_t W = 0; W != Webs.size(); ++W)
      for (uint32_t DefId : Webs[W].DefIds) {
        const DefSite &D = RD.defs()[DefId];
        if (!D.isParam() && IsSpillTemp.size() > D.Register &&
            IsSpillTemp[D.Register])
          NewIsSpillTemp[W] = true;
      }

    // Phase 1: resolve every register reference against the *unmutated*
    // function; phase 2: apply. (Resolving in place would corrupt the
    // block-prefix scans reachingDefsAt performs.)
    struct Rewrite {
      std::vector<Operand> Ops;
      Reg Dst;
    };
    std::vector<std::vector<Rewrite>> Rewrites(F.numBlocks());
    for (const auto &B : F.blocks()) {
      auto &BlockRewrites = Rewrites[B->id()];
      BlockRewrites.reserve(B->insts().size());
      for (uint32_t I = 0; I != B->insts().size(); ++I) {
        const Instruction &Inst = B->insts()[I];
        Rewrite RW{Inst.Ops, Inst.Dst};
        for (Operand &O : RW.Ops) {
          if (!O.isReg())
            continue;
          auto Reaching = RD.reachingDefsAt(F, B->id(), I, O.getReg());
          assert(!Reaching.empty() && "use without reaching def");
          O = Operand::reg(WA.webOfDef(Reaching[0]), O.getOffset());
        }
        if (Inst.Dst != NoReg) {
          auto It = DefAt.find({B->id(), I});
          assert(It != DefAt.end() && "unmapped definition site");
          RW.Dst = WA.webOfDef(It->second);
        }
        BlockRewrites.push_back(std::move(RW));
      }
    }
    for (const auto &B : F.blocks())
      for (uint32_t I = 0; I != B->insts().size(); ++I) {
        B->insts()[I].Ops = std::move(Rewrites[B->id()][I].Ops);
        B->insts()[I].Dst = Rewrites[B->id()][I].Dst;
      }

    // Parameter pseudo-defs are ids 0..numParams-1 in ReachingDefs order.
    for (uint32_t P = 0; P != F.numParams(); ++P)
      F.setParamReg(P, WA.webOfDef(P));

    F.setNumRegs(static_cast<uint32_t>(Webs.size()));
    IsSpillTemp = std::move(NewIsSpillTemp);
    AM.invalidate(F, keepBlockStructure());
  }

  //===--------------------------------------------------------------------===
  // Interference
  //===--------------------------------------------------------------------===

  InterferenceGraph buildInterference(const Liveness &LV) {
    InterferenceGraph IG(F.numRegs());

    // Parameters are all defined at entry: they interfere pairwise when
    // live into the entry block.
    std::vector<Reg> EntryLive;
    for (uint32_t P = 0; P != F.numParams(); ++P)
      if (LV.isLiveIn(0, F.paramReg(P)))
        EntryLive.push_back(F.paramReg(P));
    for (size_t A = 0; A < EntryLive.size(); ++A)
      for (size_t B = A + 1; B < EntryLive.size(); ++B)
        IG.addEdge(EntryLive[A], EntryLive[B]);

    for (const auto &Blk : F.blocks()) {
      LV.scanBlockBackward(
          F, Blk->id(), [&](uint32_t Index, const std::vector<bool> &Live) {
            const Instruction &Inst = Blk->insts()[Index];
            if (Inst.Dst == NoReg)
              return;
            // Chaitin's copy rule: a move's source does not interfere
            // with its destination.
            Reg CopySrc = NoReg;
            if (Inst.Op == Opcode::Mov && Inst.Ops[0].isReg())
              CopySrc = Inst.Ops[0].getReg();
            for (uint32_t R = 0; R != Live.size(); ++R)
              if (Live[R] && R != Inst.Dst && R != CopySrc)
                IG.addEdge(Inst.Dst, R);
          });
    }
    return IG;
  }

  /// Spill cost per web: sum of 10^loop-depth over its defs and uses.
  std::vector<double> computeCosts(const LoopInfo &LI) {
    std::vector<double> Cost(F.numRegs(), 0.0);
    std::vector<Reg> Uses;
    for (const auto &B : F.blocks()) {
      double W = LI.refWeight(B->id());
      for (const Instruction &I : B->insts()) {
        if (I.Dst != NoReg)
          Cost[I.Dst] += W;
        Uses.clear();
        I.appendUses(Uses);
        for (Reg R : Uses)
          Cost[R] += W;
      }
    }
    for (uint32_t R = 0; R != F.numRegs(); ++R)
      if (R < IsSpillTemp.size() && IsSpillTemp[R])
        Cost[R] = std::numeric_limits<double>::infinity();
    return Cost;
  }

  //===--------------------------------------------------------------------===
  // Coloring
  //===--------------------------------------------------------------------===

  std::vector<int32_t> colorChaitinBriggs(const InterferenceGraph &IG,
                                          const std::vector<double> &Cost) {
    const uint32_t N = F.numRegs();
    const uint32_t K = Options.NumColors;
    std::vector<uint32_t> Degree(N);
    for (uint32_t R = 0; R != N; ++R)
      Degree[R] = IG.degree(R);

    std::vector<bool> Removed(N, false);
    std::vector<uint32_t> Stack;
    Stack.reserve(N);

    for (uint32_t Placed = 0; Placed != N; ++Placed) {
      // Prefer a trivially colorable node; otherwise pick the cheapest
      // spill candidate (Briggs: push it optimistically).
      uint32_t Chosen = ~0u;
      for (uint32_t R = 0; R != N; ++R)
        if (!Removed[R] && Degree[R] < K) {
          Chosen = R;
          break;
        }
      if (Chosen == ~0u) {
        double Best = std::numeric_limits<double>::infinity();
        for (uint32_t R = 0; R != N; ++R) {
          if (Removed[R])
            continue;
          if (Chosen == ~0u)
            Chosen = R; // Fallback when every candidate is infinite-cost.
          double Metric = Cost[R] / (Degree[R] + 1.0);
          if (Metric < Best) {
            Best = Metric;
            Chosen = R;
          }
        }
      }
      assert(Chosen != ~0u && "no node to place");
      Removed[Chosen] = true;
      Stack.push_back(Chosen);
      for (uint32_t Nb : IG.neighbors(Chosen))
        if (!Removed[Nb] && Degree[Nb] > 0)
          --Degree[Nb];
    }

    // Optimistic select.
    std::vector<int32_t> Color(N, -1);
    for (auto It = Stack.rbegin(), E = Stack.rend(); It != E; ++It) {
      uint32_t R = *It;
      std::vector<bool> Used(K, false);
      for (uint32_t Nb : IG.neighbors(R))
        if (Color[Nb] >= 0)
          Used[Color[Nb]] = true;
      for (uint32_t C = 0; C != K; ++C)
        if (!Used[C]) {
          Color[R] = static_cast<int32_t>(C);
          break;
        }
    }
    return Color;
  }

  /// Freiburghouse/Chow-style priority allocation: highest usage count
  /// first, greedy color, spill what does not fit.
  std::vector<int32_t> colorUsageCount(const InterferenceGraph &IG,
                                       const std::vector<double> &Cost) {
    const uint32_t N = F.numRegs();
    const uint32_t K = Options.NumColors;
    std::vector<uint32_t> Order(N);
    for (uint32_t R = 0; R != N; ++R)
      Order[R] = R;
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t A, uint32_t B) {
                       return Cost[A] > Cost[B];
                     });
    std::vector<int32_t> Color(N, -1);
    for (uint32_t R : Order) {
      std::vector<bool> Used(K, false);
      for (uint32_t Nb : IG.neighbors(R))
        if (Color[Nb] >= 0)
          Used[Color[Nb]] = true;
      for (uint32_t C = 0; C != K; ++C)
        if (!Used[C]) {
          Color[R] = static_cast<int32_t>(C);
          break;
        }
    }
    return Color;
  }

  //===--------------------------------------------------------------------===
  // Spill code
  //===--------------------------------------------------------------------===

  void insertSpillCode(const std::vector<uint32_t> &Spilled) {
    std::vector<int32_t> SlotOf(F.numRegs(), -1);
    for (uint32_t W : Spilled) {
      IRFrameSlot Slot;
      Slot.Name = formatString("spill.%u", NextSpillName++);
      Slot.SizeWords = 1;
      Slot.Kind = FrameSlotKind::Spill;
      SlotOf[W] = static_cast<int32_t>(F.addFrameSlot(Slot));
    }
    std::vector<bool> SpilledSet(F.numRegs(), false);
    for (uint32_t W : Spilled)
      SpilledSet[W] = true;

    IsSpillTemp.resize(F.numRegs(), false);

    for (const auto &B : F.blocks()) {
      std::vector<Instruction> NewInsts;
      NewInsts.reserve(B->insts().size() * 2);
      for (Instruction Inst : B->insts()) {
        // Reload each distinct spilled register used by Inst.
        std::map<Reg, Reg> TmpOf;
        for (Operand &O : Inst.Ops) {
          if (!O.isReg() || !SpilledSet[O.getReg()])
            continue;
          Reg Old = O.getReg();
          auto [It, Inserted] = TmpOf.try_emplace(Old, NoReg);
          if (Inserted) {
            Reg Tmp = F.newReg();
            IsSpillTemp.resize(F.numRegs(), false);
            IsSpillTemp[Tmp] = true;
            It->second = Tmp;
            Instruction Reload(Opcode::Load, Tmp,
                               {Operand::frame(SlotOf[Old])}, Inst.Loc);
            Reload.MemInfo.Class = RefClass::SpillReload;
            NewInsts.push_back(std::move(Reload));
          }
          O = Operand::reg(It->second, O.getOffset());
        }
        // Rewrite a spilled destination to a temp + store.
        Reg StoreFrom = NoReg;
        int32_t StoreSlot = -1;
        if (Inst.Dst != NoReg && SpilledSet[Inst.Dst]) {
          StoreSlot = SlotOf[Inst.Dst];
          Reg Tmp = F.newReg();
          IsSpillTemp.resize(F.numRegs(), false);
          IsSpillTemp[Tmp] = true;
          Inst.Dst = Tmp;
          StoreFrom = Tmp;
        }
        NewInsts.push_back(std::move(Inst));
        if (StoreFrom != NoReg) {
          Instruction Spill(Opcode::Store, NoReg,
                            {Operand::reg(StoreFrom),
                             Operand::frame(StoreSlot)});
          Spill.MemInfo.Class = RefClass::Spill;
          NewInsts.push_back(std::move(Spill));
        }
      }
      B->insts() = std::move(NewInsts);
    }

    // A spilled parameter web: store the incoming register at entry.
    for (uint32_t P = 0; P != F.numParams(); ++P) {
      Reg PR = F.paramReg(P);
      if (!SpilledSet[PR])
        continue;
      Instruction Spill(Opcode::Store, NoReg,
                        {Operand::reg(PR), Operand::frame(SlotOf[PR])});
      Spill.MemInfo.Class = RefClass::Spill;
      auto &Entry = F.entry()->insts();
      Entry.insert(Entry.begin(), std::move(Spill));
      // The incoming register's only remaining use is that store; it
      // stays a (tiny) web next round.
      IsSpillTemp.resize(F.numRegs(), false);
      IsSpillTemp[PR] = true;
    }
  }

  //===--------------------------------------------------------------------===
  // Final rewrite
  //===--------------------------------------------------------------------===

  uint32_t rewriteToColors(const std::vector<int32_t> &Color) {
    uint32_t MaxColor = 0;
    for (const auto &B : F.blocks()) {
      std::vector<Instruction> NewInsts;
      NewInsts.reserve(B->insts().size());
      for (Instruction Inst : B->insts()) {
        for (Operand &O : Inst.Ops)
          if (O.isReg()) {
            assert(Color[O.getReg()] >= 0 && "uncolored register survived");
            O = Operand::reg(static_cast<Reg>(Color[O.getReg()]),
                             O.getOffset());
            MaxColor = std::max(MaxColor, O.getReg());
          }
        if (Inst.Dst != NoReg) {
          assert(Color[Inst.Dst] >= 0 && "uncolored register survived");
          Inst.Dst = static_cast<Reg>(Color[Inst.Dst]);
          MaxColor = std::max(MaxColor, Inst.Dst);
        }
        // Coalesce now-identity copies.
        if (Inst.Op == Opcode::Mov && Inst.Ops[0].isReg() &&
            Inst.Ops[0].getOffset() == 0 && Inst.Ops[0].getReg() == Inst.Dst)
          continue;
        NewInsts.push_back(std::move(Inst));
      }
      B->insts() = std::move(NewInsts);
    }
    for (uint32_t P = 0; P != F.numParams(); ++P)
      F.setParamReg(P, static_cast<Reg>(Color[F.paramReg(P)]));
    F.setNumRegs(std::max(MaxColor + 1, F.numParams()));
    return MaxColor + 1;
  }

  uint32_t countSpillSlots() const {
    uint32_t Count = 0;
    for (const IRFrameSlot &S : F.frameSlots())
      if (S.Kind == FrameSlotKind::Spill)
        ++Count;
    return Count;
  }

  [[maybe_unused]] IRModule &M;
  IRFunction &F;
  const RegAllocOptions &Options;
  AnalysisManager &AM;
  std::vector<bool> IsSpillTemp;
  uint32_t NextSpillName = 0;
};

} // namespace

RegAllocStats urcm::allocateRegisters(IRModule &M, IRFunction &F,
                                      const RegAllocOptions &Options,
                                      AnalysisManager &AM) {
  Allocator A(M, F, Options, AM);
  return A.run();
}

RegAllocStats urcm::allocateRegisters(IRModule &M, IRFunction &F,
                                      const RegAllocOptions &Options) {
  AnalysisManager AM(M);
  return allocateRegisters(M, F, Options, AM);
}

RegAllocStats urcm::allocateRegisters(IRModule &M,
                                      const RegAllocOptions &Options) {
  AnalysisManager AM(M);
  return allocateRegisters(M, Options, AM);
}

RegAllocStats urcm::allocateRegisters(IRModule &M,
                                      const RegAllocOptions &Options,
                                      AnalysisManager &AM) {
  RegAllocStats Total;
  for (const auto &F : M.functions()) {
    RegAllocStats S = allocateRegisters(M, *F, Options, AM);
    NumRAFunctions.add();
    NumRAIterations.add(S.Iterations);
    Total.NumWebs += S.NumWebs;
    Total.NumSpilledWebs += S.NumSpilledWebs;
    Total.NumSpillSlots += S.NumSpillSlots;
    Total.NumColorsUsed = std::max(Total.NumColorsUsed, S.NumColorsUsed);
    Total.Iterations = std::max(Total.Iterations, S.Iterations);
  }
  NumRAWebs.add(Total.NumWebs);
  NumRASpilledWebs.add(Total.NumSpilledWebs);
  NumRASpillSlots.add(Total.NumSpillSlots);
  return Total;
}
