//===- LoopPromotion.cpp - Scalar loop promotion -------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/transforms/LoopPromotion.h"

#include "urcm/analysis/AliasAnalysis.h"
#include "urcm/analysis/CFG.h"
#include "urcm/analysis/Loops.h"
#include "urcm/pass/Analyses.h"

#include <algorithm>
#include <map>
#include <set>

using namespace urcm;

namespace {

/// A promotable location: one unescaping scalar object addressed
/// directly.
struct Location {
  bool IsGlobal;
  uint32_t Id;

  bool operator<(const Location &RHS) const {
    return std::tie(IsGlobal, Id) < std::tie(RHS.IsGlobal, RHS.Id);
  }
  Operand asOperand() const {
    return IsGlobal ? Operand::global(Id) : Operand::frame(Id);
  }
};

class Promoter {
public:
  Promoter(IRModule &M, IRFunction &F, AnalysisManager &AM)
      : M(M), F(F), AM(AM) {}

  /// Attempts one promotion round; returns true if anything changed.
  bool runOnce(LoopPromotionStats &Stats) {
    const CFGInfo &CFG = AM.get<CFGAnalysis>(F);
    const LoopInfo &LI = AM.get<LoopAnalysis>(F);
    const AliasInfo &AA = AM.get<AliasAnalysisInfo>(F);

    // Prefer inner loops: process deeper headers first so values hoist
    // level by level.
    std::vector<const LoopInfoEntry *> Loops;
    for (const LoopInfoEntry &L : LI.loops())
      Loops.push_back(&L);
    std::sort(Loops.begin(), Loops.end(),
              [&](const LoopInfoEntry *A, const LoopInfoEntry *B) {
                return LI.depth(A->Header) > LI.depth(B->Header);
              });

    for (const LoopInfoEntry *L : Loops)
      if (promoteLoop(*L, CFG, AA, Stats)) {
        // The CFG changed: every cached result for F is stale.
        AM.invalidate(F, PreservedAnalyses::none());
        return true;
      }
    return false;
  }

private:
  /// Identifies a promotable direct scalar reference.
  bool locationOf(const Instruction &I, const AliasInfo &AA,
                  Location &Out) {
    if (!I.isMemAccess())
      return false;
    const Operand &Addr = I.addressOperand();
    if (Addr.isGlobal() && Addr.getOffset() == 0) {
      uint32_t Obj = AA.objectForGlobal(Addr.getId());
      if (M.globals()[Addr.getId()].SizeWords == 1 &&
          !AA.objectEscapes(Obj)) {
        Out = Location{true, Addr.getId()};
        return true;
      }
    }
    if (Addr.isFrame() && Addr.getOffset() == 0) {
      const IRFrameSlot &Slot = F.frameSlots()[Addr.getId()];
      uint32_t Obj = AA.objectForFrame(Addr.getId());
      if (Slot.SizeWords == 1 && Slot.Kind == FrameSlotKind::LocalVar &&
          !AA.objectEscapes(Obj)) {
        Out = Location{false, Addr.getId()};
        return true;
      }
    }
    return false;
  }

  bool promoteLoop(const LoopInfoEntry &L, const CFGInfo &CFG,
                   const AliasInfo &AA, LoopPromotionStats &Stats) {
    std::set<uint32_t> InLoop(L.Blocks.begin(), L.Blocks.end());

    // Calls forbid promotion: callees may reference globals by name.
    for (uint32_t BlockId : L.Blocks)
      for (const Instruction &I : F.block(BlockId)->insts())
        if (I.isCall())
          return false;

    // Collect candidate locations and whether each is stored.
    std::map<Location, bool> Stored;
    for (uint32_t BlockId : L.Blocks) {
      for (const Instruction &I : F.block(BlockId)->insts()) {
        Location Loc{};
        if (!locationOf(I, AA, Loc))
          continue;
        auto [It, Inserted] = Stored.try_emplace(Loc, false);
        It->second |= I.isStore();
      }
    }
    if (Stored.empty())
      return false;

    // Header entry edges from outside the loop.
    std::vector<uint32_t> OutsidePreds;
    for (uint32_t Pred : CFG.preds(L.Header))
      if (!InLoop.count(Pred))
        OutsidePreds.push_back(Pred);
    if (OutsidePreds.empty())
      return false; // Unreachable or irreducible entry; skip.

    // Exit edges (block in loop -> successor outside).
    std::vector<std::pair<uint32_t, uint32_t>> ExitEdges;
    for (uint32_t BlockId : L.Blocks)
      for (uint32_t Succ : CFG.succs(BlockId))
        if (!InLoop.count(Succ))
          ExitEdges.push_back({BlockId, Succ});

    // Assign a home register per location.
    std::map<Location, Reg> Home;
    for (const auto &[Loc, WasStored] : Stored)
      Home[Loc] = F.newReg();

    // 1. Preheader: load every location, then enter the header.
    BasicBlock *Preheader = F.addBlock("loop.preheader");
    for (const auto &[Loc, Ignored] : Stored) {
      Instruction Load(Opcode::Load, Home[Loc], {Loc.asOperand()});
      Preheader->insts().push_back(std::move(Load));
    }
    Preheader->insts().push_back(Instruction(
        Opcode::Br, NoReg, {Operand::block(Preheader->id())}));
    // Fix the Br target to the header (self-placeholder replaced).
    Preheader->insts().back().Ops[0] = Operand::block(L.Header);
    ++Stats.PreheadersCreated;

    // Redirect outside entries to the preheader.
    for (uint32_t Pred : OutsidePreds)
      redirect(F.block(Pred)->back(), L.Header, Preheader->id());

    // 2. Split exit edges that need store-backs. When none of the
    //    locations was stored, exits need nothing.
    bool AnyStored = false;
    for (const auto &[Loc, WasStored] : Stored)
      AnyStored |= WasStored;
    if (AnyStored) {
      for (const auto &[From, To] : ExitEdges) {
        BasicBlock *ExitStub = F.addBlock("loop.exit");
        for (const auto &[Loc, WasStored] : Stored) {
          if (!WasStored)
            continue;
          Instruction Store(Opcode::Store, NoReg,
                            {Operand::reg(Home[Loc]), Loc.asOperand()});
          ExitStub->insts().push_back(std::move(Store));
          ++Stats.ExitStoresInserted;
        }
        ExitStub->insts().push_back(
            Instruction(Opcode::Br, NoReg, {Operand::block(To)}));
        redirect(F.block(From)->back(), To, ExitStub->id());
      }
    }

    // 3. Rewrite references inside the loop.
    for (uint32_t BlockId : L.Blocks) {
      for (Instruction &I : F.block(BlockId)->insts()) {
        Location Loc{};
        if (!locationOf(I, AA, Loc))
          continue;
        Reg R = Home[Loc];
        if (I.isLoad()) {
          I = Instruction(Opcode::Mov, I.Dst, {Operand::reg(R)}, I.Loc);
        } else {
          I = Instruction(Opcode::Mov, R, {I.Ops[0]}, I.Loc);
        }
        ++Stats.RewrittenRefs;
      }
    }
    Stats.PromotedLocations += Stored.size();
    return true;
  }

  /// Rewrites block operands of terminator \p Term from \p OldTarget to
  /// \p NewTarget.
  static void redirect(Instruction &Term, uint32_t OldTarget,
                       uint32_t NewTarget) {
    for (Operand &O : Term.Ops)
      if (O.isBlock() && O.getId() == OldTarget)
        O = Operand::block(NewTarget);
  }

  IRModule &M;
  IRFunction &F;
  AnalysisManager &AM;
};

} // namespace

LoopPromotionStats urcm::promoteLoopScalars(IRModule &M, IRFunction &F,
                                            AnalysisManager &AM) {
  LoopPromotionStats Stats;
  Promoter P(M, F, AM);
  // Each successful round mutates the CFG; bound the work generously.
  for (unsigned Round = 0; Round != 64; ++Round)
    if (!P.runOnce(Stats))
      break;
  return Stats;
}

LoopPromotionStats urcm::promoteLoopScalars(IRModule &M,
                                            AnalysisManager &AM) {
  LoopPromotionStats Total;
  for (const auto &F : M.functions()) {
    LoopPromotionStats S = promoteLoopScalars(M, *F, AM);
    Total.PromotedLocations += S.PromotedLocations;
    Total.RewrittenRefs += S.RewrittenRefs;
    Total.PreheadersCreated += S.PreheadersCreated;
    Total.ExitStoresInserted += S.ExitStoresInserted;
  }
  return Total;
}

LoopPromotionStats urcm::promoteLoopScalars(IRModule &M, IRFunction &F) {
  AnalysisManager AM(M);
  return promoteLoopScalars(M, F, AM);
}

LoopPromotionStats urcm::promoteLoopScalars(IRModule &M) {
  AnalysisManager AM(M);
  return promoteLoopScalars(M, AM);
}
