//===- ValueNumbering.cpp - Local value numbering ------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/transforms/ValueNumbering.h"

#include "urcm/analysis/AliasAnalysis.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace urcm;

namespace {

/// Canonical operand for hashing: either a value number (for registers)
/// or the literal operand payload.
struct CanonOperand {
  enum class Kind { VN, Imm, Global, Frame } K;
  int64_t A = 0; // VN id / immediate / object id.
  int64_t B = 0; // Offset for Global/Frame.

  bool operator<(const CanonOperand &RHS) const {
    return std::tie(K, A, B) < std::tie(RHS.K, RHS.A, RHS.B);
  }
  bool operator==(const CanonOperand &RHS) const {
    return K == RHS.K && A == RHS.A && B == RHS.B;
  }
};

/// Expression key: opcode plus canonical operands.
struct ExprKey {
  Opcode Op;
  std::vector<CanonOperand> Ops;

  bool operator<(const ExprKey &RHS) const {
    return std::tie(Op, Ops) < std::tie(RHS.Op, RHS.Ops);
  }
};

/// Memory address key: (base canonical operand, offset).
struct AddrKey {
  CanonOperand Base;
  int32_t Offset;

  bool operator<(const AddrKey &RHS) const {
    return std::tie(Base, Offset) < std::tie(RHS.Base, RHS.Offset);
  }
};

bool isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
    return true;
  default:
    return false;
  }
}

bool isPureComputation(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::Neg:
  case Opcode::Not:
    return true;
  default:
    return false;
  }
}

class BlockNumberer {
public:
  BlockNumberer(const IRModule &M, IRFunction &F, const AliasInfo &AA,
                ValueNumberingStats &Stats)
      : M(M), F(F), AA(AA), Stats(Stats) {}

  void run(BasicBlock &B) {
    VNOfReg.assign(F.numRegs(), -1);
    NextVN = 0;
    Exprs.clear();
    RegHoldingVN.clear();
    Memory.clear();

    for (Instruction &I : B.insts())
      visit(I);
  }

private:
  int64_t freshVN() { return NextVN++; }

  int64_t vnOfReg(Reg R) {
    if (VNOfReg[R] < 0)
      VNOfReg[R] = freshVN();
    return VNOfReg[R];
  }

  /// Canonicalizes an operand for hashing; returns false for operand
  /// kinds that should not participate (blocks, functions).
  bool canonicalize(const Operand &O, CanonOperand &Out) {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      if (O.getOffset() != 0)
        return false; // Address-mode register operand.
      Out = {CanonOperand::Kind::VN, vnOfReg(O.getReg()), 0};
      return true;
    case Operand::Kind::Imm:
      Out = {CanonOperand::Kind::Imm, O.getImm(), 0};
      return true;
    case Operand::Kind::Global:
      Out = {CanonOperand::Kind::Global, O.getId(), O.getOffset()};
      return true;
    case Operand::Kind::Frame:
      Out = {CanonOperand::Kind::Frame, O.getId(), O.getOffset()};
      return true;
    default:
      return false;
    }
  }

  /// Canonical key for a memory address operand.
  bool addressKey(const Operand &Addr, AddrKey &Out) {
    switch (Addr.kind()) {
    case Operand::Kind::Reg:
      Out.Base = {CanonOperand::Kind::VN, vnOfReg(Addr.getReg()), 0};
      Out.Offset = Addr.getOffset();
      return true;
    case Operand::Kind::Global:
      Out.Base = {CanonOperand::Kind::Global, Addr.getId(), 0};
      Out.Offset = Addr.getOffset();
      return true;
    case Operand::Kind::Frame:
      Out.Base = {CanonOperand::Kind::Frame, Addr.getId(), 0};
      Out.Offset = Addr.getOffset();
      return true;
    default:
      return false;
    }
  }

  /// May a store to \p StoreAddr modify the location \p Key describes?
  bool mayAliasKey(const Instruction &Store, const AddrKey &Key) {
    const Operand &SA = Store.addressOperand();
    AddrKey StoreKey{};
    if (addressKey(SA, StoreKey)) {
      if (StoreKey.Base == Key.Base)
        return StoreKey.Offset == Key.Offset; // Same base: exact offsets.
    }
    // Different bases: consult the object machinery. Direct object
    // bases are disjoint when the objects differ; register bases may
    // reach anything in their points-to set.
    auto ObjectsOf =
        [&](const CanonOperand &Base) -> std::vector<uint32_t> {
      switch (Base.K) {
      case CanonOperand::Kind::Global:
        return {AA.objectForGlobal(static_cast<uint32_t>(Base.A))};
      case CanonOperand::Kind::Frame:
        return {AA.objectForFrame(static_cast<uint32_t>(Base.A))};
      default:
        return {}; // Unknown (register base): resolved below.
      }
    };
    std::vector<uint32_t> KeyObjects = ObjectsOf(Key.Base);
    std::vector<uint32_t> StoreObjects;
    if (SA.isReg()) {
      StoreObjects = AA.pointsTo(SA.getReg());
      if (StoreObjects.empty())
        return true; // Unknown pointer: assume aliasing.
    } else {
      StoreObjects = ObjectsOf(StoreKey.Base);
    }
    if (KeyObjects.empty())
      return true; // Register-based key vs different base: be safe.
    for (uint32_t KO : KeyObjects) {
      for (uint32_t SO : StoreObjects)
        if (KO == SO || SO == AA.externalObject())
          return true;
      // External on the store side covers escaped objects.
      if (std::find(StoreObjects.begin(), StoreObjects.end(),
                    AA.externalObject()) != StoreObjects.end() &&
          AA.objectEscapes(KO))
        return true;
    }
    return false;
  }

  void killRegister(Reg R) {
    // The register changes identity. Stale *keys* referring to its old
    // VN can never match again (fresh VNs are handed out), but entries
    // whose *value* is this register would forward the new value:
    // scrub them.
    VNOfReg[R] = -1;
    for (auto It = RegHoldingVN.begin(); It != RegHoldingVN.end();) {
      if (It->second == R)
        It = RegHoldingVN.erase(It);
      else
        ++It;
    }
    for (auto It = Memory.begin(); It != Memory.end();) {
      if (It->second.isReg() && It->second.getReg() == R)
        It = Memory.erase(It);
      else
        ++It;
    }
  }

  void visit(Instruction &I) {
    // 1. Pure computations: reuse an available value when possible.
    if (isPureComputation(I.Op) && I.Dst != NoReg) {
      ExprKey Key{I.Op, {}};
      bool Canonical = true;
      for (const Operand &O : I.Ops) {
        CanonOperand C{};
        if (!canonicalize(O, C)) {
          Canonical = false;
          break;
        }
        Key.Ops.push_back(C);
      }
      if (Canonical && isCommutative(I.Op) && Key.Ops.size() == 2 &&
          !(Key.Ops[0] < Key.Ops[1]))
        std::swap(Key.Ops[0], Key.Ops[1]);

      if (Canonical) {
        auto It = Exprs.find(Key);
        if (It != Exprs.end()) {
          auto HolderIt = RegHoldingVN.find(It->second);
          if (HolderIt != RegHoldingVN.end() &&
              HolderIt->second != I.Dst) {
            Reg Holder = HolderIt->second;
            Reg Dst = I.Dst;
            killRegister(Dst);
            I = Instruction(Opcode::Mov, Dst,
                            {Operand::reg(Holder)}, I.Loc);
            VNOfReg[Dst] = It->second;
            ++Stats.RedundantComputations;
            return;
          }
        }
        Reg Dst = I.Dst;
        killRegister(Dst);
        int64_t VN = freshVN();
        VNOfReg[Dst] = VN;
        Exprs[Key] = VN;
        RegHoldingVN[VN] = Dst;
        return;
      }
      // Fall through: uncanonical operands, treat as opaque def.
    }

    switch (I.Op) {
    case Opcode::Mov: {
      Reg Dst = I.Dst;
      const Operand &Src = I.Ops[0];
      if (Src.isReg() && Src.getOffset() == 0) {
        int64_t VN = vnOfReg(Src.getReg());
        killRegister(Dst);
        VNOfReg[Dst] = VN;
        // Do not claim VN ownership: the source register keeps it.
        return;
      }
      if (Src.isImm()) {
        ExprKey Key{Opcode::Mov,
                    {{CanonOperand::Kind::Imm, Src.getImm(), 0}}};
        killRegister(Dst);
        auto It = Exprs.find(Key);
        if (It != Exprs.end()) {
          VNOfReg[Dst] = It->second;
          return;
        }
        int64_t VN = freshVN();
        VNOfReg[Dst] = VN;
        Exprs[Key] = VN;
        RegHoldingVN[VN] = Dst;
        return;
      }
      killRegister(Dst);
      return;
    }
    case Opcode::Load: {
      AddrKey Key{};
      bool HaveKey = addressKey(I.Ops[0], Key);
      Reg Dst = I.Dst;
      if (HaveKey) {
        auto It = Memory.find(Key);
        if (It != Memory.end()) {
          // Forward the known value (kept fresh by killRegister).
          Operand Known = It->second;
          killRegister(Dst);
          I = Instruction(Opcode::Mov, Dst, {Known}, I.Loc);
          if (Known.isReg())
            VNOfReg[Dst] = vnOfReg(Known.getReg());
          ++Stats.ForwardedLoads;
          return;
        }
      }
      killRegister(Dst);
      if (HaveKey)
        Memory[Key] = Operand::reg(Dst);
      return;
    }
    case Opcode::Store: {
      // Kill every remembered location the store may alias.
      for (auto It = Memory.begin(); It != Memory.end();) {
        if (mayAliasKey(I, It->first))
          It = Memory.erase(It);
        else
          ++It;
      }
      AddrKey Key{};
      if (addressKey(I.Ops[1], Key)) {
        const Operand &Value = I.Ops[0];
        if (Value.isImm() ||
            (Value.isReg() && Value.getOffset() == 0))
          Memory[Key] = Value;
      }
      return;
    }
    case Opcode::Call:
      Memory.clear(); // The callee may write anything reachable.
      if (I.Dst != NoReg)
        killRegister(I.Dst);
      return;
    default:
      if (I.Dst != NoReg)
        killRegister(I.Dst);
      return;
    }
  }

  [[maybe_unused]] const IRModule &M;
  IRFunction &F;
  const AliasInfo &AA;
  ValueNumberingStats &Stats;

  std::vector<int64_t> VNOfReg;
  int64_t NextVN = 0;
  std::map<ExprKey, int64_t> Exprs;
  std::map<int64_t, Reg> RegHoldingVN;
  std::map<AddrKey, Operand> Memory;
};

} // namespace

ValueNumberingStats urcm::numberValues(IRModule &M, IRFunction &F) {
  ModuleEscapeInfo ME(M);
  AliasInfo AA(M, F, ME);
  return numberValues(M, F, AA);
}

ValueNumberingStats urcm::numberValues(IRModule &M, IRFunction &F,
                                       const AliasInfo &AA) {
  ValueNumberingStats Stats;
  BlockNumberer BN(M, F, AA, Stats);
  for (const auto &B : F.blocks())
    BN.run(*B);
  return Stats;
}

ValueNumberingStats urcm::numberValues(IRModule &M) {
  ValueNumberingStats Total;
  for (const auto &F : M.functions()) {
    ValueNumberingStats S = numberValues(M, *F);
    Total.RedundantComputations += S.RedundantComputations;
    Total.ForwardedLoads += S.ForwardedLoads;
  }
  return Total;
}
