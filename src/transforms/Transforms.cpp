//===- Transforms.cpp - IR cleanup passes --------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/transforms/Transforms.h"

#include "urcm/analysis/AliasAnalysis.h"
#include "urcm/analysis/CFG.h"
#include "urcm/analysis/MemoryLiveness.h"
#include "urcm/pass/Analyses.h"
#include "urcm/transforms/ValueNumbering.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

using namespace urcm;

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

uint64_t urcm::propagateCopies(IRFunction &F) {
  uint64_t Rewrites = 0;
  for (const auto &B : F.blocks()) {
    // Reg -> replacement operand (a Reg or Imm), valid at this point.
    std::unordered_map<Reg, Operand> CopyOf;

    auto Invalidate = [&](Reg R) {
      CopyOf.erase(R);
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second.isReg() && It->second.getReg() == R)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };

    for (Instruction &I : B->insts()) {
      // Rewrite register operands through the copy map. Address-mode
      // register operands keep their offset.
      for (Operand &O : I.Ops) {
        if (!O.isReg())
          continue;
        auto It = CopyOf.find(O.getReg());
        if (It == CopyOf.end())
          continue;
        const Operand &Repl = It->second;
        if (Repl.isReg()) {
          O = Operand::reg(Repl.getReg(), O.getOffset());
          ++Rewrites;
        } else if (Repl.isImm() && O.getOffset() == 0) {
          // Only pure value positions may become immediates; memory
          // address operands must stay registers (an absolute-immediate
          // address would defeat the verifier and the point of the
          // test).
          bool IsAddressPosition =
              I.isMemAccess() && &O == &I.addressOperand();
          if (!IsAddressPosition) {
            O = Operand::imm(Repl.getImm());
            ++Rewrites;
          }
        }
      }

      if (I.Dst == NoReg)
        continue;
      Invalidate(I.Dst);
      if (I.Op == Opcode::Mov) {
        const Operand &Src = I.Ops[0];
        bool SelfCopy = Src.isReg() && Src.getReg() == I.Dst;
        if (!SelfCopy && ((Src.isReg() && Src.getOffset() == 0) ||
                          Src.isImm()))
          CopyOf[I.Dst] = Src;
      }
    }
  }
  return Rewrites;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

static bool hasSideEffects(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::Print:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return true;
  default:
    return false;
  }
}

uint64_t urcm::eliminateDeadCode(IRFunction &F) {
  uint64_t Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Registers used anywhere (including as addresses).
    std::vector<bool> Used(F.numRegs(), false);
    std::vector<Reg> Uses;
    for (const auto &B : F.blocks())
      for (const Instruction &I : B->insts()) {
        Uses.clear();
        I.appendUses(Uses);
        for (Reg R : Uses)
          Used[R] = true;
      }
    for (const auto &B : F.blocks()) {
      auto &Insts = B->insts();
      size_t Before = Insts.size();
      Insts.erase(std::remove_if(Insts.begin(), Insts.end(),
                                 [&](const Instruction &I) {
                                   return !hasSideEffects(I) &&
                                          I.Dst != NoReg && !Used[I.Dst];
                                 }),
                  Insts.end());
      size_t Delta = Before - Insts.size();
      Removed += Delta;
      Changed |= Delta != 0;
    }
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Dead store elimination
//===----------------------------------------------------------------------===//

uint64_t urcm::eliminateDeadStores(IRModule &M, IRFunction &F) {
  ModuleEscapeInfo ME(M);
  CFGInfo CFG(F);
  AliasInfo AA(M, F, ME);
  MemoryLiveness ML(M, F, CFG, AA);
  return eliminateDeadStores(M, F, ML);
}

uint64_t urcm::eliminateDeadStores(IRModule &M, IRFunction &F,
                                   const MemoryLiveness &ML) {
  (void)M;
  uint64_t Removed = 0;
  for (const auto &B : F.blocks()) {
    auto &Insts = B->insts();
    std::vector<Instruction> Kept;
    Kept.reserve(Insts.size());
    for (uint32_t Index = 0; Index != Insts.size(); ++Index) {
      const Instruction &I = Insts[Index];
      MemoryLiveness::RefFlags Flags = ML.flags(B->id(), Index);
      if (I.isStore() && Flags.Tracked && Flags.DeadStore) {
        ++Removed;
        continue;
      }
      Kept.push_back(I);
    }
    Insts = std::move(Kept);
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

TransformStats urcm::runCleanupPipeline(IRModule &M,
                                        const TransformOptions &Options,
                                        AnalysisManager &AM) {
  // These passes rewrite instructions but never block structure, so the
  // CFG and everything derived purely from it survive each step.
  PreservedAnalyses KeepCFG;
  KeepCFG.preserve<CFGAnalysis>()
      .preserve<DominatorTreeAnalysis>()
      .preserve<LoopAnalysis>();

  TransformStats Stats;
  for (uint32_t Round = 0; Round != Options.MaxRounds; ++Round) {
    uint64_t Progress = 0;
    for (const auto &F : M.functions()) {
      if (Options.CopyPropagation) {
        uint64_t N = propagateCopies(*F);
        if (N != 0)
          AM.invalidate(*F, KeepCFG);
        Stats.CopiesPropagated += N;
        Progress += N;
      }
      if (Options.ValueNumbering) {
        ValueNumberingStats VN =
            numberValues(M, *F, AM.get<AliasAnalysisInfo>(*F));
        if (VN.RedundantComputations + VN.ForwardedLoads != 0)
          AM.invalidate(*F, KeepCFG);
        Stats.RedundantComputations += VN.RedundantComputations;
        Stats.ForwardedLoads += VN.ForwardedLoads;
        Progress += VN.RedundantComputations + VN.ForwardedLoads;
      }
      if (Options.DeadCodeElimination) {
        uint64_t N = eliminateDeadCode(*F);
        if (N != 0)
          AM.invalidate(*F, KeepCFG);
        Stats.DeadInstsRemoved += N;
        Progress += N;
      }
      if (Options.DeadStoreElimination) {
        uint64_t N = eliminateDeadStores(
            M, *F, AM.get<MemoryLivenessAnalysis>(*F));
        if (N != 0)
          AM.invalidate(*F, KeepCFG);
        Stats.DeadStoresRemoved += N;
        Progress += N;
      }
    }
    if (Progress == 0)
      break;
  }
  return Stats;
}

TransformStats urcm::runCleanupPipeline(IRModule &M,
                                        const TransformOptions &Options) {
  AnalysisManager AM(M);
  return runCleanupPipeline(M, Options, AM);
}
