//===- Diagnostics.cpp - Diagnostic engine --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/support/Diagnostics.h"

#include "urcm/support/StringUtils.h"

using namespace urcm;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return formatString("%u:%u", Line, Col);
}

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += severityName(Severity);
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
