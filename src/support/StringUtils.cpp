//===- StringUtils.cpp - Small string helpers -----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace urcm;

std::string urcm::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string urcm::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool urcm::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}
