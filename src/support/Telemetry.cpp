//===- Telemetry.cpp - Counters, timers, traces --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Storage layout. A leaked registry singleton (immune to static
// destruction order) holds the name tables and a list of live
// ThreadState blocks. Each thread lazily allocates one ThreadState on
// first recording call: a fixed array of relaxed-atomic counter cells,
// lazily-allocated histogram bucket arrays, and a span vector guarded
// by a per-thread mutex. Only the owning thread writes its cells, so
// the relaxed atomics cost what plain adds cost; exporters read
// everything under the registry lock plus the per-thread span locks.
// When a thread exits, its state folds into the registry's retired
// accumulators, so short-lived threads (the streaming trace producers)
// lose nothing.
//
//===----------------------------------------------------------------------===//

#include "urcm/support/Telemetry.h"

#include "urcm/support/StringUtils.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace urcm;
using namespace urcm::telemetry;

namespace {

constexpr uint32_t MaxCounters = 256;
constexpr uint32_t MaxHistograms = 64;
constexpr uint32_t NumBuckets = 256; // 4 sub-buckets x 64 powers of two.

/// Log-linear bucket index: exact below 4, then 4 sub-buckets per power
/// of two (<= 25% relative error on the bucket upper bound).
uint32_t bucketOf(uint64_t V) {
  if (V < 4)
    return static_cast<uint32_t>(V);
  uint32_t Msb = 63 - static_cast<uint32_t>(__builtin_clzll(V));
  return (Msb << 2) | static_cast<uint32_t>((V >> (Msb - 2)) & 3);
}

uint64_t bucketUpper(uint32_t B) {
  if (B < 4)
    return B;
  uint32_t Msb = B >> 2, Sub = B & 3;
  return (uint64_t(1) << Msb) + ((uint64_t(Sub) + 1) << (Msb - 2)) - 1;
}

struct Span {
  const char *Name;
  std::string Detail;
  uint64_t StartNs;
  uint64_t DurNs;
};

struct HistCells {
  std::atomic<std::atomic<uint64_t> *> Buckets{nullptr};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

struct HistAccum {
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;

  void fold(const HistCells &C) {
    if (std::atomic<uint64_t> *B =
            C.Buckets.load(std::memory_order_acquire))
      for (uint32_t I = 0; I != NumBuckets; ++I)
        Buckets[I] += B[I].load(std::memory_order_relaxed);
    Count += C.Count.load(std::memory_order_relaxed);
    Sum += C.Sum.load(std::memory_order_relaxed);
    Max = std::max(Max, C.Max.load(std::memory_order_relaxed));
  }
};

struct ThreadState {
  uint32_t Tid = 0;
  std::string Name;
  std::array<std::atomic<uint64_t>, MaxCounters> Counts{};
  std::array<HistCells, MaxHistograms> Hists;
  std::mutex SpanM;
  std::vector<Span> Spans;

  ~ThreadState() {
    for (HistCells &H : Hists)
      delete[] H.Buckets.load(std::memory_order_relaxed);
  }
};

struct RetiredSpan {
  Span S;
  uint32_t Tid;
  std::string ThreadName;
};

struct NamedId {
  const char *Name;
  const char *Desc;
};

struct Registry {
  std::mutex M;
  std::vector<NamedId> Counters;
  std::vector<NamedId> Histograms;
  std::vector<ThreadState *> Live;
  uint32_t NextTid = 0;
  // Folded state of exited threads.
  std::array<uint64_t, MaxCounters> RetiredCounts{};
  std::array<HistAccum, MaxHistograms> RetiredHists;
  std::vector<RetiredSpan> RetiredSpans;
  // Collected classification remarks.
  std::vector<ClassifyRemark> Remarks;
  std::FILE *RemarkEcho = nullptr;
};

Registry &registry() {
  static Registry *R = new Registry; // Leaked: outlives thread_local dtors.
  return *R;
}

std::chrono::steady_clock::time_point processOrigin() {
  static const std::chrono::steady_clock::time_point Origin =
      std::chrono::steady_clock::now();
  return Origin;
}

/// Registers on first touch, folds into the registry on thread exit.
struct ThreadStateHolder {
  ThreadState *TS;

  ThreadStateHolder() : TS(new ThreadState) {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    TS->Tid = R.NextTid++;
    R.Live.push_back(TS);
  }

  ~ThreadStateHolder() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    for (uint32_t I = 0; I != MaxCounters; ++I)
      R.RetiredCounts[I] += TS->Counts[I].load(std::memory_order_relaxed);
    for (uint32_t I = 0; I != MaxHistograms; ++I)
      R.RetiredHists[I].fold(TS->Hists[I]);
    for (Span &S : TS->Spans)
      R.RetiredSpans.push_back({std::move(S), TS->Tid, TS->Name});
    R.Live.erase(std::find(R.Live.begin(), R.Live.end(), TS));
    delete TS;
  }
};

ThreadState &threadState() {
  thread_local ThreadStateHolder Holder;
  return *Holder.TS;
}

/// The built-in collecting sink (enableClassifyCapture).
class CollectingSink : public RemarkSink {
public:
  void remark(const ClassifyRemark &R) override {
    Registry &Reg = registry();
    std::FILE *Echo;
    {
      std::lock_guard<std::mutex> Lock(Reg.M);
      Reg.Remarks.push_back(R);
      Echo = Reg.RemarkEcho;
    }
    if (Echo) {
      std::string Line = R.str();
      Line.push_back('\n');
      std::fwrite(Line.data(), 1, Line.size(), Echo);
    }
  }
};

CollectingSink &collectingSink() {
  static CollectingSink *S = new CollectingSink;
  return *S;
}

std::atomic<RemarkSink *> InstalledSink{nullptr};

//===--------------------------------------------------------------------===//
// JSON helpers
//===--------------------------------------------------------------------===//

void jsonEscape(std::string &Out, const char *S) {
  for (; *S; ++S) {
    unsigned char C = static_cast<unsigned char>(*S);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(static_cast<char>(C));
    }
  }
}

void jsonString(std::string &Out, const std::string &S) {
  Out.push_back('"');
  jsonEscape(Out, S.c_str());
  Out.push_back('"');
}

//===--------------------------------------------------------------------===//
// Aggregation snapshots (taken under the registry lock)
//===--------------------------------------------------------------------===//

std::array<uint64_t, MaxCounters> aggregateCountsLocked(Registry &R) {
  std::array<uint64_t, MaxCounters> Out = R.RetiredCounts;
  for (ThreadState *TS : R.Live)
    for (uint32_t I = 0; I != MaxCounters; ++I)
      Out[I] += TS->Counts[I].load(std::memory_order_relaxed);
  return Out;
}

HistAccum aggregateHistLocked(Registry &R, uint32_t Id) {
  HistAccum Out = R.RetiredHists[Id];
  for (ThreadState *TS : R.Live)
    Out.fold(TS->Hists[Id]);
  return Out;
}

uint64_t histPercentile(const HistAccum &H, double P) {
  if (H.Count == 0)
    return 0;
  double Clamped = std::min(std::max(P, 0.0), 100.0);
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Clamped / 100.0 * static_cast<double>(H.Count)));
  Rank = std::max<uint64_t>(Rank, 1);
  uint64_t Seen = 0;
  for (uint32_t B = 0; B != NumBuckets; ++B) {
    Seen += H.Buckets[B];
    if (Seen >= Rank)
      return std::min(bucketUpper(B), H.Max);
  }
  return H.Max;
}

/// All spans, exported as {span, tid, thread name}; collected under the
/// registry lock plus each live thread's span lock.
std::vector<RetiredSpan> collectSpans() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<RetiredSpan> Out = R.RetiredSpans;
  for (ThreadState *TS : R.Live) {
    std::lock_guard<std::mutex> SpanLock(TS->SpanM);
    for (const Span &S : TS->Spans)
      Out.push_back({S, TS->Tid, TS->Name});
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

#ifndef URCM_TELEMETRY_DISABLED
std::atomic<bool> detail::EnabledFlag{false};
#endif

bool telemetry::enabled() { return detail::enabledFast(); }

void telemetry::setEnabled(bool On) {
#ifndef URCM_TELEMETRY_DISABLED
  if (On)
    processOrigin(); // Pin the clock origin before the first span.
  detail::EnabledFlag.store(On, std::memory_order_relaxed);
#else
  (void)On;
#endif
}

uint64_t detail::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - processOrigin())
          .count());
}

uint64_t telemetry::nowNanos() { return detail::nowNs(); }

uint32_t detail::registerCounter(const char *Name, const char *Desc) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  assert(R.Counters.size() < MaxCounters && "raise MaxCounters");
  R.Counters.push_back({Name, Desc});
  return static_cast<uint32_t>(R.Counters.size() - 1);
}

uint32_t detail::registerHistogram(const char *Name, const char *Desc) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  assert(R.Histograms.size() < MaxHistograms && "raise MaxHistograms");
  R.Histograms.push_back({Name, Desc});
  return static_cast<uint32_t>(R.Histograms.size() - 1);
}

void detail::counterAdd(uint32_t Id, uint64_t N) {
  threadState().Counts[Id].fetch_add(N, std::memory_order_relaxed);
}

void detail::histRecord(uint32_t Id, uint64_t Value) {
  HistCells &H = threadState().Hists[Id];
  std::atomic<uint64_t> *B = H.Buckets.load(std::memory_order_relaxed);
  if (!B) {
    B = new std::atomic<uint64_t>[NumBuckets]();
    H.Buckets.store(B, std::memory_order_release);
  }
  B[bucketOf(Value)].fetch_add(1, std::memory_order_relaxed);
  H.Count.fetch_add(1, std::memory_order_relaxed);
  H.Sum.fetch_add(Value, std::memory_order_relaxed);
  if (Value > H.Max.load(std::memory_order_relaxed))
    H.Max.store(Value, std::memory_order_relaxed);
}

void detail::endPhase(const char *Name, std::string Detail,
                      uint64_t StartNs) {
  uint64_t End = nowNs();
  ThreadState &TS = threadState();
  std::lock_guard<std::mutex> Lock(TS.SpanM);
  TS.Spans.push_back(
      {Name, std::move(Detail), StartNs, End - StartNs});
}

uint64_t Counter::value() const {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return aggregateCountsLocked(R)[Id];
}

uint64_t Histogram::count() const {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return aggregateHistLocked(R, Id).Count;
}

uint64_t Histogram::max() const {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return aggregateHistLocked(R, Id).Max;
}

uint64_t Histogram::sum() const {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return aggregateHistLocked(R, Id).Sum;
}

uint64_t Histogram::percentile(double P) const {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return histPercentile(aggregateHistLocked(R, Id), P);
}

void telemetry::setThreadName(std::string Name) {
  ThreadState &TS = threadState();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  TS.Name = std::move(Name);
}

std::vector<PhaseTotals> telemetry::phaseTotals() {
  std::map<std::string, PhaseTotals> ByName;
  for (const RetiredSpan &RS : collectSpans()) {
    PhaseTotals &T = ByName[RS.S.Name];
    T.Name = RS.S.Name;
    ++T.Count;
    T.TotalNs += RS.S.DurNs;
    T.MaxNs = std::max(T.MaxNs, RS.S.DurNs);
  }
  std::vector<PhaseTotals> Out;
  Out.reserve(ByName.size());
  for (auto &[Name, T] : ByName)
    Out.push_back(std::move(T));
  return Out;
}

//===----------------------------------------------------------------------===//
// Remarks
//===----------------------------------------------------------------------===//

RemarkSink::~RemarkSink() = default;

std::string ClassifyRemark::str() const {
  std::string Loc = Line == 0 ? std::string("<unknown>")
                              : formatString("%u:%u", Line, Col);
  std::string Out = formatString(
      "%s: urcm-classify: %s func=%s class=%s bypass=%d lastref=%d "
      "alias-set=%d reason=%s",
      Loc.c_str(), Form, Function.c_str(), Verdict, Bypass ? 1 : 0,
      LastRef ? 1 : 0, AliasSet, Reason);
  if (DeadReason[0] != '\0')
    Out += formatString(" dead=%s", DeadReason);
  return Out;
}

RemarkSink *telemetry::classifySink() {
  if (!detail::enabledFast())
    return nullptr;
  return InstalledSink.load(std::memory_order_acquire);
}

void telemetry::setClassifySink(RemarkSink *Sink) {
  InstalledSink.store(Sink, std::memory_order_release);
}

void telemetry::enableClassifyCapture(std::FILE *Echo) {
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    R.RemarkEcho = Echo;
  }
  setClassifySink(&collectingSink());
}

std::vector<ClassifyRemark> telemetry::collectedRemarks() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Remarks;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

std::string telemetry::snapshotJSON() {
  // Stable output: every registered name appears, sorted.
  Registry &R = registry();
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, HistAccum>> Hists;
  std::vector<ClassifyRemark> Remarks;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    std::array<uint64_t, MaxCounters> Counts = aggregateCountsLocked(R);
    for (uint32_t I = 0; I != R.Counters.size(); ++I)
      Counters.emplace_back(R.Counters[I].Name, Counts[I]);
    for (uint32_t I = 0; I != R.Histograms.size(); ++I)
      Hists.emplace_back(R.Histograms[I].Name, aggregateHistLocked(R, I));
    Remarks = R.Remarks;
  }
  std::sort(Counters.begin(), Counters.end());
  std::sort(Hists.begin(), Hists.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  std::vector<PhaseTotals> Phases = phaseTotals();

  std::string Out = "{\n  \"version\": 1,\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    jsonString(Out, Name);
    Out += formatString(": %llu", static_cast<unsigned long long>(Value));
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Hists) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    jsonString(Out, Name);
    Out += formatString(
        ": {\"count\": %llu, \"sum\": %llu, \"max\": %llu, "
        "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu}",
        static_cast<unsigned long long>(H.Count),
        static_cast<unsigned long long>(H.Sum),
        static_cast<unsigned long long>(H.Max),
        static_cast<unsigned long long>(histPercentile(H, 50)),
        static_cast<unsigned long long>(histPercentile(H, 90)),
        static_cast<unsigned long long>(histPercentile(H, 99)));
  }
  Out += "\n  },\n  \"phases\": {";
  First = true;
  for (const PhaseTotals &T : Phases) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    jsonString(Out, T.Name);
    Out += formatString(
        ": {\"count\": %llu, \"total_us\": %.3f, \"max_us\": %.3f}",
        static_cast<unsigned long long>(T.Count),
        static_cast<double>(T.TotalNs) / 1e3,
        static_cast<double>(T.MaxNs) / 1e3);
  }
  Out += "\n  },\n  \"remarks\": [";
  First = true;
  for (const ClassifyRemark &Rem : Remarks) {
    Out += First ? "\n    {" : ",\n    {";
    First = false;
    Out += "\"function\": ";
    jsonString(Out, Rem.Function);
    Out += formatString(", \"line\": %u, \"col\": %u, \"form\": \"%s\", "
                        "\"class\": \"%s\", \"bypass\": %s, "
                        "\"lastref\": %s, \"alias_set\": %d, "
                        "\"reason\": \"%s\", \"dead\": \"%s\"}",
                        Rem.Line, Rem.Col, Rem.Form, Rem.Verdict,
                        Rem.Bypass ? "true" : "false",
                        Rem.LastRef ? "true" : "false", Rem.AliasSet,
                        Rem.Reason, Rem.DeadReason);
  }
  Out += "\n  ]\n}\n";
  return Out;
}

std::string telemetry::chromeTraceJSON() {
  std::vector<RetiredSpan> Spans = collectSpans();
  std::sort(Spans.begin(), Spans.end(),
            [](const RetiredSpan &A, const RetiredSpan &B) {
              return A.S.StartNs < B.S.StartNs;
            });

  std::string Out = "{\"traceEvents\":[\n";
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"urcm\"}}";

  // One thread_name metadata record per thread that recorded anything.
  std::map<uint32_t, std::string> ThreadNames;
  for (const RetiredSpan &RS : Spans)
    if (!RS.ThreadName.empty())
      ThreadNames.emplace(RS.Tid, RS.ThreadName);
  for (const auto &[Tid, Name] : ThreadNames) {
    Out += formatString(
        ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
        "\"args\":{\"name\":",
        Tid);
    jsonString(Out, Name);
    Out += "}}";
  }

  for (const RetiredSpan &RS : Spans) {
    Out += ",\n{\"name\":";
    jsonString(Out, RS.S.Name);
    Out += formatString(",\"cat\":\"urcm\",\"ph\":\"X\",\"ts\":%.3f,"
                        "\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                        static_cast<double>(RS.S.StartNs) / 1e3,
                        static_cast<double>(RS.S.DurNs) / 1e3, RS.Tid);
    if (!RS.S.Detail.empty()) {
      Out += ",\"args\":{\"detail\":";
      jsonString(Out, RS.S.Detail);
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

std::string telemetry::summaryText() {
  Registry &R = registry();
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, HistAccum>> Hists;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    std::array<uint64_t, MaxCounters> Counts = aggregateCountsLocked(R);
    for (uint32_t I = 0; I != R.Counters.size(); ++I)
      if (Counts[I] != 0)
        Counters.emplace_back(formatString("%-34s %s", R.Counters[I].Name,
                                           R.Counters[I].Desc),
                              Counts[I]);
    for (uint32_t I = 0; I != R.Histograms.size(); ++I) {
      HistAccum H = aggregateHistLocked(R, I);
      if (H.Count != 0)
        Hists.emplace_back(R.Histograms[I].Name, H);
    }
  }
  std::sort(Counters.begin(), Counters.end());
  std::sort(Hists.begin(), Hists.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  std::string Out = "=== urcm telemetry ===\n";
  for (const auto &[Label, Value] : Counters)
    Out += formatString("%12llu  %s\n",
                        static_cast<unsigned long long>(Value),
                        Label.c_str());
  for (const auto &[Name, H] : Hists) {
    Out += formatString(
        "%12llu  %-34s p50=%llu p90=%llu p99=%llu max=%llu\n",
        static_cast<unsigned long long>(H.Count), Name.c_str(),
        static_cast<unsigned long long>(histPercentile(H, 50)),
        static_cast<unsigned long long>(histPercentile(H, 90)),
        static_cast<unsigned long long>(histPercentile(H, 99)),
        static_cast<unsigned long long>(H.Max));
    // Raw bucket dump: one [lower..upper]=count term per nonzero
    // log-linear bucket.
    Out += "              buckets:";
    for (uint32_t B = 0; B != NumBuckets; ++B)
      if (H.Buckets[B] != 0)
        Out += formatString(
            " [%llu..%llu]=%llu",
            static_cast<unsigned long long>(B == 0 ? 0
                                                   : bucketUpper(B - 1) + 1),
            static_cast<unsigned long long>(bucketUpper(B)),
            static_cast<unsigned long long>(H.Buckets[B]));
    Out += '\n';
  }
  for (const PhaseTotals &T : phaseTotals())
    Out += formatString("%12.3f ms %-32s (%llu spans)\n",
                        static_cast<double>(T.TotalNs) / 1e6,
                        T.Name.c_str(),
                        static_cast<unsigned long long>(T.Count));
  return Out;
}

void telemetry::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  R.RetiredCounts.fill(0);
  for (HistAccum &H : R.RetiredHists)
    H = HistAccum();
  R.RetiredSpans.clear();
  R.Remarks.clear();
  for (ThreadState *TS : R.Live) {
    for (std::atomic<uint64_t> &C : TS->Counts)
      C.store(0, std::memory_order_relaxed);
    for (HistCells &H : TS->Hists) {
      if (std::atomic<uint64_t> *B =
              H.Buckets.load(std::memory_order_relaxed))
        for (uint32_t I = 0; I != NumBuckets; ++I)
          B[I].store(0, std::memory_order_relaxed);
      H.Count.store(0, std::memory_order_relaxed);
      H.Sum.store(0, std::memory_order_relaxed);
      H.Max.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> SpanLock(TS->SpanM);
    TS->Spans.clear();
  }
}

//===----------------------------------------------------------------------===//
// Metrics sampler (--metrics-out)
//===----------------------------------------------------------------------===//

namespace {

/// {VmRSS, VmHWM} in KiB from /proc/self/status; {0, 0} off Linux.
std::pair<uint64_t, uint64_t> readRssKb() {
#if defined(__linux__)
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return {0, 0};
  uint64_t Rss = 0, Hwm = 0;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmRSS:", 6) == 0)
      Rss = std::strtoull(Line + 6, nullptr, 10);
    else if (std::strncmp(Line, "VmHWM:", 6) == 0)
      Hwm = std::strtoull(Line + 6, nullptr, 10);
  }
  std::fclose(F);
  return {Rss, Hwm};
#else
  return {0, 0};
#endif
}

} // namespace

struct telemetry::MetricsSampler::Impl {
  std::FILE *File = nullptr;
  uint32_t IntervalMs = 200;
  std::thread Thread;
  std::mutex M;
  std::condition_variable CV;
  bool StopRequested = false;
  // Rate state (sampler thread only).
  uint64_t LastEvents = 0;
  uint64_t LastNs = 0;

  /// Appends one JSONL sample. Called from the sampler thread and once
  /// more (after the join) from stop().
  void writeSample() {
    Registry &R = registry();
    std::vector<std::pair<std::string, uint64_t>> Counters;
    {
      std::lock_guard<std::mutex> Lock(R.M);
      std::array<uint64_t, MaxCounters> Counts = aggregateCountsLocked(R);
      for (uint32_t I = 0; I != R.Counters.size(); ++I)
        if (Counts[I] != 0)
          Counters.emplace_back(R.Counters[I].Name, Counts[I]);
    }
    std::sort(Counters.begin(), Counters.end());

    // The work metric: data references simulated (live runs) plus trace
    // events streamed (replay paths).
    uint64_t Events = 0;
    for (const auto &[Name, Value] : Counters)
      if (Name == "sim.data-refs" || Name == "trace.events")
        Events += Value;
    uint64_t Now = detail::nowNs();
    double Rate = 0;
    if (Now > LastNs)
      Rate = static_cast<double>(Events - LastEvents) /
             (static_cast<double>(Now - LastNs) / 1e9);
    LastEvents = Events;
    LastNs = Now;

    auto [RssKb, HwmKb] = readRssKb();
    std::string Out = formatString(
        "{\"t_ms\": %.3f, \"events\": %llu, \"events_per_s\": %.0f, "
        "\"rss_kb\": %llu, \"rss_hwm_kb\": %llu, \"counters\": {",
        static_cast<double>(Now) / 1e6,
        static_cast<unsigned long long>(Events), Rate,
        static_cast<unsigned long long>(RssKb),
        static_cast<unsigned long long>(HwmKb));
    bool First = true;
    for (const auto &[Name, Value] : Counters) {
      if (!First)
        Out += ", ";
      First = false;
      jsonString(Out, Name);
      Out += formatString(": %llu", static_cast<unsigned long long>(Value));
    }
    Out += "}}\n";
    std::fwrite(Out.data(), 1, Out.size(), File);
    std::fflush(File);
  }
};

telemetry::MetricsSampler::MetricsSampler(const std::string &Path,
                                          uint32_t IntervalMs) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return; // Inert sampler: a bad path never fails the host tool.
  P = new Impl;
  P->File = F;
  P->IntervalMs = IntervalMs == 0 ? 1 : IntervalMs;
  P->LastNs = detail::nowNs();
  P->Thread = std::thread([Impl = P] {
    setThreadName("metrics-sampler");
    std::unique_lock<std::mutex> Lock(Impl->M);
    while (!Impl->StopRequested) {
      Impl->CV.wait_for(Lock,
                        std::chrono::milliseconds(Impl->IntervalMs));
      if (Impl->StopRequested)
        break; // stop() writes the final sample after the join.
      Impl->writeSample();
    }
  });
}

telemetry::MetricsSampler::~MetricsSampler() { stop(); }

void telemetry::MetricsSampler::stop() {
  if (!P)
    return;
  {
    std::lock_guard<std::mutex> Lock(P->M);
    P->StopRequested = true;
  }
  P->CV.notify_all();
  P->Thread.join();
  P->writeSample(); // Final sample: sub-interval runs still get one.
  std::fclose(P->File);
  delete P;
  P = nullptr;
}
