//===- IR.cpp - URCM three-address IR core --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/IR.h"

using namespace urcm;

const char *urcm::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::Mov:
    return "mov";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Print:
    return "print";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  return "unknown";
}

bool urcm::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

void Instruction::appendUses(std::vector<Reg> &Uses) const {
  for (const Operand &O : Ops)
    if (O.isReg())
      Uses.push_back(O.getReg());
}

std::vector<uint32_t> BasicBlock::successors() const {
  std::vector<uint32_t> Succs;
  if (Insts.empty())
    return Succs;
  const Instruction &Term = back();
  switch (Term.Op) {
  case Opcode::Br:
    Succs.push_back(Term.Ops[0].getId());
    break;
  case Opcode::CondBr:
    Succs.push_back(Term.Ops[1].getId());
    // A CondBr with identical arms has a single successor.
    if (Term.Ops[2].getId() != Term.Ops[1].getId())
      Succs.push_back(Term.Ops[2].getId());
    break;
  default:
    break;
  }
  return Succs;
}
