//===- IRParser.cpp - Textual IR parser ----------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/IRParser.h"

#include "urcm/support/StringUtils.h"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

using namespace urcm;

namespace {

/// Splits \p Text into lines (without terminators).
std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos) {
      if (Start < Text.size())
        Lines.push_back(Text.substr(Start));
      break;
    }
    Lines.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

/// Cursor over one line.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : Line(Line) {}

  void skipSpace() {
    while (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
  }
  bool atEnd() {
    skipSpace();
    return Pos >= Line.size();
  }
  char peek() {
    skipSpace();
    return Pos < Line.size() ? Line[Pos] : '\0';
  }
  bool consume(char C) {
    skipSpace();
    if (Pos < Line.size() && Line[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool consumeWord(const char *Word) {
    skipSpace();
    size_t Len = std::strlen(Word);
    if (Line.compare(Pos, Len, Word) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }
  /// Reads an identifier-ish token [A-Za-z0-9_.]+.
  std::string ident() {
    skipSpace();
    size_t Begin = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_' || Line[Pos] == '.'))
      ++Pos;
    return Line.substr(Begin, Pos - Begin);
  }
  std::optional<int64_t> integer() {
    skipSpace();
    size_t Begin = Pos;
    if (Pos < Line.size() && (Line[Pos] == '-' || Line[Pos] == '+'))
      ++Pos;
    size_t DigitsBegin = Pos;
    while (Pos < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos == DigitsBegin) {
      Pos = Begin;
      return std::nullopt;
    }
    return std::stoll(Line.substr(Begin, Pos - Begin));
  }
  std::string rest() { return Line.substr(std::min(Pos, Line.size())); }

private:
  const std::string &Line;
  size_t Pos = 0;
};

struct NameTables {
  std::map<std::string, uint32_t> Globals;
  std::map<std::string, uint32_t> Functions;
};

class Parser {
public:
  Parser(const std::string &Text, DiagnosticEngine &Diags)
      : Lines(splitLines(Text)), Diags(Diags) {}

  std::unique_ptr<IRModule> run() {
    M = std::make_unique<IRModule>();
    // Pass 1: globals and function signatures (needed for call targets).
    for (const std::string &Raw : Lines) {
      std::string Line = trim(Raw);
      if (startsWith(Line, "global "))
        parseGlobal(Line);
      else if (startsWith(Line, "func "))
        parseFunctionHeader(Line, /*CreateOnly=*/true);
    }
    if (Failed)
      return nullptr;

    // Pass 2: bodies.
    CurFunc = nullptr;
    for (size_t Index = 0; Index != Lines.size(); ++Index) {
      std::string Line = trim(Lines[Index]);
      if (Line.empty() || startsWith(Line, "global "))
        continue;
      if (startsWith(Line, "func ")) {
        parseFunctionHeader(Line, /*CreateOnly=*/false);
        // Pre-create blocks in label order so ids match the printed
        // order even when branches reference blocks before their labels.
        for (size_t Ahead = Index + 1; Ahead != Lines.size(); ++Ahead) {
          std::string Next = trim(Lines[Ahead]);
          if (startsWith(Next, "func "))
            break;
          if (!Next.empty() && Next.front() == '.' &&
              Next.back() == ':')
            blockFor(Next.substr(1, Next.size() - 2));
        }
        continue;
      }
      if (!CurFunc) {
        error(Index, "statement outside a function");
        continue;
      }
      if (startsWith(Line, "frame ")) {
        parseFrameSlot(Index, Line);
        continue;
      }
      if (Line.front() == '.' && Line.back() == ':') {
        std::string Name = Line.substr(1, Line.size() - 2);
        CurBlock = blockFor(Name);
        continue;
      }
      if (!CurBlock) {
        error(Index, "instruction outside a block");
        continue;
      }
      parseInstruction(Index, Line);
    }
    if (Failed)
      return nullptr;
    return std::move(M);
  }

private:
  void error(size_t LineIndex, const std::string &Message) {
    Failed = true;
    Diags.error(SourceLoc(static_cast<uint32_t>(LineIndex + 1), 1),
                Message);
  }

  void parseGlobal(const std::string &Line) {
    // global @name : N words
    LineCursor C(Line);
    C.consumeWord("global");
    if (!C.consume('@'))
      return;
    std::string Name = C.ident();
    C.consume(':');
    auto Size = C.integer();
    if (Names.Globals.count(Name))
      return; // Pass-2 revisit.
    uint32_t Id = M->addGlobal(
        IRGlobal{Name, static_cast<uint32_t>(Size.value_or(1)), nullptr,
                 0});
    Names.Globals[Name] = Id;
  }

  void parseFunctionHeader(const std::string &Line, bool CreateOnly) {
    // func name(params=P, regs=R, returns=T[, paramregs=[rA rB]])
    LineCursor C(Line);
    C.consumeWord("func");
    std::string Name = C.ident();
    C.consume('(');
    C.consumeWord("params=");
    int64_t Params = C.integer().value_or(0);
    C.consume(',');
    C.consumeWord("regs=");
    int64_t Regs = C.integer().value_or(0);
    C.consume(',');
    C.consumeWord("returns=");
    std::string Returns = C.ident();
    std::vector<Reg> ParamRegs;
    if (C.consume(',')) {
      C.consumeWord("paramregs=");
      C.consume('[');
      while (C.consume('r')) {
        ParamRegs.push_back(
            static_cast<Reg>(C.integer().value_or(0)));
        C.skipSpace();
      }
      C.consume(']');
    }

    if (CreateOnly) {
      if (Names.Functions.count(Name))
        return;
      IRFunction *F = M->addFunction(Name, Returns == "int",
                                     static_cast<uint32_t>(Params));
      Names.Functions[Name] = F->id();
      return;
    }

    CurFunc = M->function(Names.Functions.at(Name));
    CurFunc->setNumRegs(static_cast<uint32_t>(Regs));
    for (uint32_t P = 0; P != ParamRegs.size(); ++P)
      CurFunc->setParamReg(P, ParamRegs[P]);
    CurBlock = nullptr;
    BlockIds.clear();
  }

  void parseFrameSlot(size_t LineIndex, const std::string &Line) {
    // frame %name : N words [(spill)]
    LineCursor C(Line);
    C.consumeWord("frame");
    if (!C.consume('%')) {
      error(LineIndex, "expected %name in frame declaration");
      return;
    }
    std::string Name = C.ident();
    C.consume(':');
    int64_t Size = C.integer().value_or(1);
    bool IsSpill = Line.find("(spill)") != std::string::npos;
    CurFunc->addFrameSlot(IRFrameSlot{
        Name, static_cast<uint32_t>(Size),
        IsSpill ? FrameSlotKind::Spill : FrameSlotKind::LocalVar, nullptr,
        0});
  }

  BasicBlock *blockFor(const std::string &Name) {
    auto It = BlockIds.find(Name);
    if (It != BlockIds.end())
      return CurFunc->block(It->second);
    BasicBlock *B = CurFunc->addBlock(Name);
    BlockIds[Name] = B->id();
    return B;
  }

  /// Frame slot id by name (slots are declared before use).
  std::optional<uint32_t> frameIdFor(const std::string &Name) {
    for (uint32_t S = 0; S != CurFunc->frameSlots().size(); ++S)
      if (CurFunc->frameSlots()[S].Name == Name)
        return S;
    return std::nullopt;
  }

  /// True if \p Name is a register spelling (r followed by digits only).
  static bool isRegisterName(const std::string &Name) {
    if (Name.size() < 2 || Name[0] != 'r')
      return false;
    for (size_t I = 1; I != Name.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Name[I])))
        return false;
    return true;
  }

  std::optional<Operand> parseOperand(size_t LineIndex, LineCursor &C) {
    C.skipSpace();
    char Next = C.peek();
    if (Next == '[') {
      // [r5+3]: register with addressing offset.
      C.consume('[');
      C.consume('r');
      auto RegNo = C.integer();
      if (!RegNo) {
        error(LineIndex, "malformed register operand");
        return std::nullopt;
      }
      int64_t Offset = C.integer().value_or(0);
      C.consume(']');
      return Operand::reg(static_cast<Reg>(*RegNo),
                          static_cast<int32_t>(Offset));
    }
    if (Next == '@') {
      C.consume('@');
      std::string Name = C.ident();
      auto It = Names.Globals.find(Name);
      if (It == Names.Globals.end()) {
        error(LineIndex, formatString("unknown global '@%s'",
                                      Name.c_str()));
        return std::nullopt;
      }
      int64_t Offset = C.integer().value_or(0);
      return Operand::global(It->second, static_cast<int32_t>(Offset));
    }
    if (Next == '%') {
      C.consume('%');
      std::string Name = C.ident();
      auto Slot = frameIdFor(Name);
      if (!Slot) {
        error(LineIndex, formatString("unknown frame slot '%%%s'",
                                      Name.c_str()));
        return std::nullopt;
      }
      int64_t Offset = C.integer().value_or(0);
      return Operand::frame(*Slot, static_cast<int32_t>(Offset));
    }
    if (Next == '.') {
      C.consume('.');
      std::string Name = C.ident();
      return Operand::block(blockFor(Name)->id());
    }
    if (Next == '-' || Next == '+' ||
        std::isdigit(static_cast<unsigned char>(Next))) {
      auto Value = C.integer();
      if (!Value) {
        error(LineIndex, "malformed immediate");
        return std::nullopt;
      }
      return Operand::imm(*Value);
    }
    // Bare identifier: a register (r<digits>) or a function reference.
    std::string Name = C.ident();
    if (isRegisterName(Name))
      return Operand::reg(
          static_cast<Reg>(std::stoul(Name.substr(1))));
    auto It = Names.Functions.find(Name);
    if (It == Names.Functions.end()) {
      error(LineIndex,
            formatString("unknown operand '%s'", Name.c_str()));
      return std::nullopt;
    }
    return Operand::func(It->second);
  }

  std::optional<Opcode> opcodeByName(const std::string &Name) {
    static const std::map<std::string, Opcode> Table = {
        {"add", Opcode::Add},       {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},       {"div", Opcode::Div},
        {"rem", Opcode::Rem},       {"and", Opcode::And},
        {"or", Opcode::Or},         {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},       {"shr", Opcode::Shr},
        {"cmplt", Opcode::CmpLt},   {"cmple", Opcode::CmpLe},
        {"cmpgt", Opcode::CmpGt},   {"cmpge", Opcode::CmpGe},
        {"cmpeq", Opcode::CmpEq},   {"cmpne", Opcode::CmpNe},
        {"neg", Opcode::Neg},       {"not", Opcode::Not},
        {"mov", Opcode::Mov},       {"load", Opcode::Load},
        {"store", Opcode::Store},   {"call", Opcode::Call},
        {"print", Opcode::Print},   {"br", Opcode::Br},
        {"condbr", Opcode::CondBr}, {"ret", Opcode::Ret},
    };
    auto It = Table.find(Name);
    if (It == Table.end())
      return std::nullopt;
    return It->second;
  }

  void parseInstruction(size_t LineIndex, const std::string &Line) {
    // Split off annotation tags ("!um !bypass !lastref").
    std::string Body = Line;
    MemRefInfo Info;
    size_t Bang = Body.find(" !");
    if (Bang != std::string::npos) {
      std::string Tags = Body.substr(Bang);
      Body = trim(Body.substr(0, Bang));
      auto Has = [&](const char *Tag) {
        return Tags.find(Tag) != std::string::npos;
      };
      if (Has("!am"))
        Info.Class = RefClass::Ambiguous;
      if (Has("!um"))
        Info.Class = RefClass::Unambiguous;
      if (Has("!spill"))
        Info.Class = RefClass::Spill;
      if (Has("!reload"))
        Info.Class = RefClass::SpillReload;
      Info.Bypass = Has("!bypass");
      Info.LastRef = Has("!lastref");
    }

    // Optional "rN = " destination prefix.
    Reg Dst = NoReg;
    if (Body.size() > 1 && Body[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(Body[1]))) {
      size_t DigitsEnd = 1;
      while (DigitsEnd < Body.size() &&
             std::isdigit(static_cast<unsigned char>(Body[DigitsEnd])))
        ++DigitsEnd;
      size_t EqPos = DigitsEnd;
      while (EqPos < Body.size() && Body[EqPos] == ' ')
        ++EqPos;
      if (EqPos < Body.size() && Body[EqPos] == '=') {
        Dst = static_cast<Reg>(
            std::stoul(Body.substr(1, DigitsEnd - 1)));
        Body = trim(Body.substr(EqPos + 1));
      }
    }

    LineCursor C(Body);
    std::string Mnemonic = C.ident();
    auto Op = opcodeByName(Mnemonic);
    if (!Op) {
      error(LineIndex, formatString("unknown opcode '%s'",
                                    Mnemonic.c_str()));
      return;
    }

    std::vector<Operand> Ops;
    while (!C.atEnd()) {
      auto O = parseOperand(LineIndex, C);
      if (!O)
        return;
      Ops.push_back(*O);
      if (!C.consume(','))
        break;
    }

    Instruction I(*Op, Dst, std::move(Ops));
    I.MemInfo = Info;
    CurBlock->insts().push_back(std::move(I));
  }

  std::vector<std::string> Lines;
  DiagnosticEngine &Diags;
  std::unique_ptr<IRModule> M;
  NameTables Names;
  IRFunction *CurFunc = nullptr;
  BasicBlock *CurBlock = nullptr;
  std::map<std::string, uint32_t> BlockIds;
  bool Failed = false;
};

} // namespace

std::unique_ptr<IRModule> urcm::parseIR(const std::string &Text,
                                        DiagnosticEngine &Diags) {
  Parser P(Text, Diags);
  return P.run();
}
