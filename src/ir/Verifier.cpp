//===- Verifier.cpp - IR structural verifier ------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/Verifier.h"

#include "urcm/support/StringUtils.h"

#include <deque>

using namespace urcm;

namespace {

class Verifier {
public:
  Verifier(const IRModule &M, const IRFunction &F, DiagnosticEngine &Diags)
      : M(M), F(F), Diags(Diags) {}

  bool run() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return false;
    }
    for (const auto &B : F.blocks())
      checkBlock(*B);
    if (!Failed)
      checkDefiniteAssignment();
    return !Failed;
  }

private:
  void error(const std::string &Message) {
    Failed = true;
    Diags.error(SourceLoc(),
                formatString("%s: %s", F.name().c_str(), Message.c_str()));
  }

  void checkBlock(const BasicBlock &B) {
    if (B.empty() || !B.back().isTerm()) {
      error(formatString("block .%s does not end with a terminator",
                         B.name().c_str()));
      return;
    }
    for (size_t I = 0, E = B.insts().size(); I != E; ++I) {
      const Instruction &Inst = B.insts()[I];
      if (Inst.isTerm() && I + 1 != E)
        error(formatString("terminator in the middle of block .%s",
                           B.name().c_str()));
      checkInst(B, Inst);
    }
  }

  void checkOperandKinds(const BasicBlock &B, const Instruction &I,
                         size_t Index,
                         std::initializer_list<Operand::Kind> Allowed) {
    if (Index >= I.Ops.size())
      return;
    const Operand &O = I.Ops[Index];
    for (Operand::Kind K : Allowed)
      if (O.kind() == K)
        return;
    error(formatString("operand %zu of '%s' in .%s has invalid kind",
                       Index, opcodeName(I.Op), B.name().c_str()));
  }

  void requireOps(const BasicBlock &B, const Instruction &I, size_t Min,
                  size_t Max) {
    if (I.Ops.size() < Min || I.Ops.size() > Max)
      error(formatString("'%s' in .%s has %zu operands; expected %zu..%zu",
                         opcodeName(I.Op), B.name().c_str(), I.Ops.size(),
                         Min, Max));
  }

  void checkInst(const BasicBlock &B, const Instruction &I) {
    using K = Operand::Kind;
    const std::initializer_list<K> Value = {K::Reg, K::Imm};
    const std::initializer_list<K> Address = {K::Reg, K::Global, K::Frame};
    const std::initializer_list<K> Movable = {K::Reg, K::Imm, K::Global,
                                              K::Frame};

    if (I.Dst != NoReg && I.Dst >= F.numRegs())
      error(formatString("destination register r%u out of range in .%s",
                         I.Dst, B.name().c_str()));

    // Range checks on every operand.
    for (const Operand &O : I.Ops) {
      switch (O.kind()) {
      case K::Reg:
        if (O.getReg() >= F.numRegs())
          error(formatString("register r%u out of range in .%s",
                             O.getReg(), B.name().c_str()));
        break;
      case K::Global:
        if (O.getId() >= M.globals().size())
          error("global operand id out of range");
        break;
      case K::Frame:
        if (O.getId() >= F.frameSlots().size())
          error("frame operand id out of range");
        break;
      case K::Block:
        if (O.getId() >= F.numBlocks())
          error("block operand id out of range");
        break;
      case K::Func:
        if (O.getId() >= M.functions().size())
          error("function operand id out of range");
        break;
      case K::Imm:
      case K::None:
        break;
      }
    }

    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
      requireOps(B, I, 2, 2);
      if (I.Dst == NoReg)
        error(formatString("'%s' must define a register", opcodeName(I.Op)));
      // Address-of operands are legal arithmetic inputs (pointer math).
      checkOperandKinds(B, I, 0, Movable);
      checkOperandKinds(B, I, 1, Movable);
      break;
    case Opcode::Neg:
    case Opcode::Not:
      requireOps(B, I, 1, 1);
      if (I.Dst == NoReg)
        error(formatString("'%s' must define a register", opcodeName(I.Op)));
      checkOperandKinds(B, I, 0, Value);
      break;
    case Opcode::Mov:
      requireOps(B, I, 1, 1);
      if (I.Dst == NoReg)
        error("'mov' must define a register");
      checkOperandKinds(B, I, 0, Movable);
      break;
    case Opcode::Load:
      requireOps(B, I, 1, 1);
      if (I.Dst == NoReg)
        error("'load' must define a register");
      checkOperandKinds(B, I, 0, Address);
      break;
    case Opcode::Store:
      requireOps(B, I, 2, 2);
      if (I.Dst != NoReg)
        error("'store' must not define a register");
      checkOperandKinds(B, I, 0, Value);
      checkOperandKinds(B, I, 1, Address);
      break;
    case Opcode::Call: {
      if (I.Ops.empty() || !I.Ops[0].isFunc()) {
        error("'call' must name a function in operand 0");
        break;
      }
      const IRFunction *Callee = M.function(I.Ops[0].getId());
      if (I.Ops.size() - 1 != Callee->numParams())
        error(formatString("call to %s passes %zu args; expected %u",
                           Callee->name().c_str(), I.Ops.size() - 1,
                           Callee->numParams()));
      if (I.Dst != NoReg && !Callee->returnsValue())
        error(formatString("call to void function %s defines a register",
                           Callee->name().c_str()));
      for (size_t Idx = 1; Idx < I.Ops.size(); ++Idx)
        checkOperandKinds(B, I, Idx, Movable);
      break;
    }
    case Opcode::Print:
      requireOps(B, I, 1, 1);
      checkOperandKinds(B, I, 0, Value);
      break;
    case Opcode::Br:
      requireOps(B, I, 1, 1);
      checkOperandKinds(B, I, 0, {K::Block});
      break;
    case Opcode::CondBr:
      requireOps(B, I, 3, 3);
      checkOperandKinds(B, I, 0, {K::Reg});
      checkOperandKinds(B, I, 1, {K::Block});
      checkOperandKinds(B, I, 2, {K::Block});
      break;
    case Opcode::Ret:
      requireOps(B, I, 0, 1);
      if (!I.Ops.empty())
        checkOperandKinds(B, I, 0, Value);
      break;
    }
  }

  /// Forward dataflow: a register may only be used if it is assigned on
  /// every path from entry. Parameters r0..numParams-1 start assigned.
  void checkDefiniteAssignment() {
    const uint32_t NumBlocks = F.numBlocks();
    const uint32_t NumRegs = F.numRegs();
    if (NumRegs == 0)
      return;

    // DefinedOut[b] = set of regs definitely assigned at the end of b.
    // Initialize to "all" (top) for a meet-over-paths intersection.
    std::vector<std::vector<bool>> DefinedOut(
        NumBlocks, std::vector<bool>(NumRegs, true));
    std::vector<std::vector<uint32_t>> Preds(NumBlocks);
    for (const auto &B : F.blocks())
      for (uint32_t Succ : B->successors())
        Preds[Succ].push_back(B->id());

    std::deque<uint32_t> Work;
    for (uint32_t BlockId = 0; BlockId != NumBlocks; ++BlockId)
      Work.push_back(BlockId);

    auto ComputeIn = [&](uint32_t BlockId) {
      std::vector<bool> In(NumRegs, BlockId == 0);
      if (BlockId == 0) {
        // Entry: only parameters are assigned.
        In.assign(NumRegs, false);
        for (uint32_t P = 0; P != F.numParams(); ++P)
          if (F.paramReg(P) < NumRegs)
            In[F.paramReg(P)] = true;
        return In;
      }
      if (Preds[BlockId].empty())
        return In; // Unreachable block: nothing assigned.
      In.assign(NumRegs, true);
      for (uint32_t Pred : Preds[BlockId])
        for (uint32_t R = 0; R != NumRegs; ++R)
          In[R] = In[R] && DefinedOut[Pred][R];
      return In;
    };

    while (!Work.empty()) {
      uint32_t BlockId = Work.front();
      Work.pop_front();
      std::vector<bool> State = ComputeIn(BlockId);
      for (const Instruction &I : F.block(BlockId)->insts())
        if (I.Dst != NoReg)
          State[I.Dst] = true;
      if (State != DefinedOut[BlockId]) {
        DefinedOut[BlockId] = State;
        for (uint32_t Succ : F.block(BlockId)->successors())
          Work.push_back(Succ);
      }
    }

    // Reachability: unreachable blocks never execute, so their uses are
    // exempt from definite-assignment (the frontend replaces their
    // bodies, but synthetic IR may still contain them).
    std::vector<bool> Reachable(NumBlocks, false);
    {
      std::vector<uint32_t> WorkList{0};
      Reachable[0] = true;
      while (!WorkList.empty()) {
        uint32_t Block = WorkList.back();
        WorkList.pop_back();
        for (uint32_t Succ : F.block(Block)->successors())
          if (!Reachable[Succ]) {
            Reachable[Succ] = true;
            WorkList.push_back(Succ);
          }
      }
    }

    // Final pass: flag uses of maybe-unassigned registers.
    for (const auto &B : F.blocks()) {
      if (!Reachable[B->id()])
        continue;
      std::vector<bool> State = ComputeIn(B->id());
      std::vector<Reg> Uses;
      for (const Instruction &I : B->insts()) {
        Uses.clear();
        I.appendUses(Uses);
        for (Reg R : Uses)
          if (!State[R])
            error(formatString("r%u used before assignment in .%s", R,
                               B->name().c_str()));
        if (I.Dst != NoReg)
          State[I.Dst] = true;
      }
    }
  }

  const IRModule &M;
  const IRFunction &F;
  DiagnosticEngine &Diags;
  bool Failed = false;
};

} // namespace

bool urcm::verifyFunction(const IRModule &M, const IRFunction &F,
                          DiagnosticEngine &Diags) {
  Verifier V(M, F, Diags);
  return V.run();
}

bool urcm::verifyModule(const IRModule &M, DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const auto &F : M.functions())
    Ok &= verifyFunction(M, *F, Diags);
  return Ok;
}
