//===- IRPrinter.cpp - Textual IR output ----------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/IR.h"
#include "urcm/support/StringUtils.h"

using namespace urcm;

static std::string printOperand(const IRModule &M, const IRFunction &F,
                                const Operand &O) {
  switch (O.kind()) {
  case Operand::Kind::None:
    return "<none>";
  case Operand::Kind::Reg:
    if (O.getOffset() != 0)
      return formatString("[r%u%+d]", O.getReg(), O.getOffset());
    return formatString("r%u", O.getReg());
  case Operand::Kind::Imm:
    return formatString("%lld", static_cast<long long>(O.getImm()));
  case Operand::Kind::Global: {
    const IRGlobal &G = M.globals()[O.getId()];
    if (O.getOffset() != 0)
      return formatString("@%s%+d", G.Name.c_str(), O.getOffset());
    return "@" + G.Name;
  }
  case Operand::Kind::Frame: {
    const IRFrameSlot &S = F.frameSlots()[O.getId()];
    if (O.getOffset() != 0)
      return formatString("%%%s%+d", S.Name.c_str(), O.getOffset());
    return "%" + S.Name;
  }
  case Operand::Kind::Block:
    return "." + F.block(O.getId())->name();
  case Operand::Kind::Func:
    return M.function(O.getId())->name();
  }
  return "?";
}

static std::string refClassTag(const MemRefInfo &Info) {
  std::string Tag;
  switch (Info.Class) {
  case RefClass::Unknown:
    return Tag;
  case RefClass::Ambiguous:
    Tag = " !am";
    break;
  case RefClass::Unambiguous:
    Tag = " !um";
    break;
  case RefClass::Spill:
    Tag = " !spill";
    break;
  case RefClass::SpillReload:
    Tag = " !reload";
    break;
  }
  if (Info.Bypass)
    Tag += " !bypass";
  if (Info.LastRef)
    Tag += " !lastref";
  return Tag;
}

std::string urcm::printInst(const IRModule &M, const IRFunction &F,
                            const Instruction &I) {
  std::string Out;
  if (I.Dst != NoReg)
    Out += formatString("r%u = ", I.Dst);
  Out += opcodeName(I.Op);
  for (size_t Idx = 0, E = I.Ops.size(); Idx != E; ++Idx) {
    Out += Idx == 0 ? " " : ", ";
    Out += printOperand(M, F, I.Ops[Idx]);
  }
  if (I.isMemAccess())
    Out += refClassTag(I.MemInfo);
  return Out;
}

std::string urcm::printIR(const IRModule &M, const IRFunction &F) {
  std::string Out = formatString("func %s(params=%u, regs=%u, returns=%s",
                                 F.name().c_str(), F.numParams(),
                                 F.numRegs(),
                                 F.returnsValue() ? "int" : "void");
  // Parameter home registers (non-identity after web renaming).
  bool Identity = true;
  for (uint32_t P = 0; P != F.numParams(); ++P)
    Identity &= F.paramReg(P) == P;
  if (!Identity) {
    Out += ", paramregs=[";
    for (uint32_t P = 0; P != F.numParams(); ++P) {
      if (P != 0)
        Out += ' ';
      Out += formatString("r%u", F.paramReg(P));
    }
    Out += ']';
  }
  Out += ")\n";
  for (const IRFrameSlot &S : F.frameSlots())
    Out += formatString("  frame %%%s : %u words%s\n", S.Name.c_str(),
                        S.SizeWords,
                        S.Kind == FrameSlotKind::Spill ? " (spill)" : "");
  for (const auto &B : F.blocks()) {
    Out += formatString(".%s:\n", B->name().c_str());
    for (const Instruction &I : B->insts()) {
      Out += "  ";
      Out += printInst(M, F, I);
      Out += '\n';
    }
  }
  return Out;
}

std::string urcm::printIR(const IRModule &M) {
  std::string Out;
  for (const IRGlobal &G : M.globals())
    Out += formatString("global @%s : %u words\n", G.Name.c_str(),
                        G.SizeWords);
  for (const auto &F : M.functions()) {
    Out += '\n';
    Out += printIR(M, *F);
  }
  return Out;
}
