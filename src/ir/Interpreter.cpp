//===- Interpreter.cpp - Direct IR execution -----------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/Interpreter.h"

#include "urcm/support/IntOps.h"
#include "urcm/support/StringUtils.h"

#include <cassert>

using namespace urcm;

namespace {

class Interpreter {
public:
  Interpreter(const IRModule &M, const InterpConfig &Config)
      : M(M), Config(Config), Memory(Config.StackTop + 64, 0) {
    // Lay out globals exactly like the code generator does.
    GlobalAddress.reserve(M.globals().size());
    uint64_t Addr = Config.GlobalBase;
    for (const IRGlobal &G : M.globals()) {
      GlobalAddress.push_back(Addr);
      Addr += G.SizeWords;
    }
  }

  InterpResult run() {
    const IRFunction *Main = M.findFunction("main");
    if (!Main || Main->numParams() != 0) {
      Result.Error = "module has no zero-argument main";
      return std::move(Result);
    }
    SP = Config.StackTop;
    callFunction(*Main, {});
    if (Result.Error.empty())
      Result.Finished = true;
    return std::move(Result);
  }

private:
  void fail(const std::string &Message) {
    if (Result.Error.empty())
      Result.Error = Message;
  }

  bool memCheck(int64_t Addr) {
    if (Addr < 0 || static_cast<uint64_t>(Addr) >= Memory.size()) {
      fail(formatString("memory access at %lld out of range",
                        static_cast<long long>(Addr)));
      return false;
    }
    return true;
  }

  /// One activation record.
  struct Frame {
    const IRFunction *F;
    std::vector<int64_t> Regs;
    std::vector<uint64_t> SlotAddress;
    uint64_t SavedSP;
  };

  /// Frame layout: slots allocated contiguously below the caller's SP.
  Frame pushFrame(const IRFunction &F) {
    Frame Fr;
    Fr.F = &F;
    Fr.Regs.assign(std::max<uint32_t>(F.numRegs(), 1), 0);
    Fr.SavedSP = SP;
    uint64_t Size = 0;
    for (const IRFrameSlot &S : F.frameSlots())
      Size += S.SizeWords;
    if (Size > SP) {
      fail("stack overflow");
      Size = 0;
    }
    SP -= Size;
    uint64_t Offset = SP;
    for (const IRFrameSlot &S : F.frameSlots()) {
      Fr.SlotAddress.push_back(Offset);
      Offset += S.SizeWords;
    }
    return Fr;
  }

  int64_t operandValue(const Frame &Fr, const Operand &O) {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      assert(O.getOffset() == 0 && "address-mode operand in value context");
      return Fr.Regs[O.getReg()];
    case Operand::Kind::Imm:
      return O.getImm();
    case Operand::Kind::Global:
      return static_cast<int64_t>(GlobalAddress[O.getId()]) +
             O.getOffset();
    case Operand::Kind::Frame:
      return static_cast<int64_t>(Fr.SlotAddress[O.getId()]) +
             O.getOffset();
    default:
      fail("invalid value operand");
      return 0;
    }
  }

  int64_t addressOf(const Frame &Fr, const Operand &O) {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      return Fr.Regs[O.getReg()] + O.getOffset();
    case Operand::Kind::Global:
      return static_cast<int64_t>(GlobalAddress[O.getId()]) +
             O.getOffset();
    case Operand::Kind::Frame:
      return static_cast<int64_t>(Fr.SlotAddress[O.getId()]) +
             O.getOffset();
    default:
      fail("invalid address operand");
      return 0;
    }
  }

  /// Executes \p F with \p Args; returns the returned value (0 if void).
  int64_t callFunction(const IRFunction &F, const std::vector<int64_t> &Args) {
    if (!Result.Error.empty())
      return 0;
    Frame Fr = pushFrame(F);
    for (uint32_t P = 0; P != F.numParams(); ++P) {
      Reg PR = F.paramReg(P);
      if (PR < Fr.Regs.size())
        Fr.Regs[PR] = Args[P];
    }

    int64_t ReturnValue = 0;
    uint32_t Block = 0;
    bool Done = false;
    while (!Done && Result.Error.empty()) {
      const BasicBlock *B = F.block(Block);
      bool Jumped = false;
      for (const Instruction &I : B->insts()) {
        if (++Result.Steps > Config.MaxSteps) {
          fail("step limit exceeded");
          break;
        }
        switch (I.Op) {
        case Opcode::Add:
          Fr.Regs[I.Dst] =
              wrapAdd(operandValue(Fr, I.Ops[0]), operandValue(Fr, I.Ops[1]));
          break;
        case Opcode::Sub:
          Fr.Regs[I.Dst] =
              wrapSub(operandValue(Fr, I.Ops[0]), operandValue(Fr, I.Ops[1]));
          break;
        case Opcode::Mul:
          Fr.Regs[I.Dst] =
              wrapMul(operandValue(Fr, I.Ops[0]), operandValue(Fr, I.Ops[1]));
          break;
        case Opcode::Div: {
          int64_t D = operandValue(Fr, I.Ops[1]);
          if (D == 0) {
            fail("division by zero");
            break;
          }
          Fr.Regs[I.Dst] = wrapDiv(operandValue(Fr, I.Ops[0]), D);
          break;
        }
        case Opcode::Rem: {
          int64_t D = operandValue(Fr, I.Ops[1]);
          if (D == 0) {
            fail("remainder by zero");
            break;
          }
          Fr.Regs[I.Dst] = wrapRem(operandValue(Fr, I.Ops[0]), D);
          break;
        }
        case Opcode::And:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) & operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::Or:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) | operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::Xor:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) ^ operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::Shl:
          Fr.Regs[I.Dst] =
              wrapShl(operandValue(Fr, I.Ops[0]),
                      static_cast<unsigned>(operandValue(Fr, I.Ops[1]) & 63));
          break;
        case Opcode::Shr:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) >> (operandValue(Fr, I.Ops[1]) & 63);
          break;
        case Opcode::CmpLt:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) < operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::CmpLe:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) <= operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::CmpGt:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) > operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::CmpGe:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) >= operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::CmpEq:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) == operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::CmpNe:
          Fr.Regs[I.Dst] =
              operandValue(Fr, I.Ops[0]) != operandValue(Fr, I.Ops[1]);
          break;
        case Opcode::Neg:
          Fr.Regs[I.Dst] = -operandValue(Fr, I.Ops[0]);
          break;
        case Opcode::Not:
          Fr.Regs[I.Dst] = ~operandValue(Fr, I.Ops[0]);
          break;
        case Opcode::Mov:
          Fr.Regs[I.Dst] = operandValue(Fr, I.Ops[0]);
          break;
        case Opcode::Load: {
          int64_t Addr = addressOf(Fr, I.Ops[0]);
          if (memCheck(Addr))
            Fr.Regs[I.Dst] = Memory[static_cast<uint64_t>(Addr)];
          break;
        }
        case Opcode::Store: {
          int64_t Addr = addressOf(Fr, I.Ops[1]);
          if (memCheck(Addr))
            Memory[static_cast<uint64_t>(Addr)] =
                operandValue(Fr, I.Ops[0]);
          break;
        }
        case Opcode::Call: {
          const IRFunction *Callee = M.function(I.Ops[0].getId());
          std::vector<int64_t> CallArgs;
          CallArgs.reserve(I.Ops.size() - 1);
          for (size_t A = 1; A != I.Ops.size(); ++A)
            CallArgs.push_back(operandValue(Fr, I.Ops[A]));
          int64_t Value = callFunction(*Callee, CallArgs);
          if (I.Dst != NoReg)
            Fr.Regs[I.Dst] = Value;
          break;
        }
        case Opcode::Print:
          Result.Output.push_back(operandValue(Fr, I.Ops[0]));
          break;
        case Opcode::Br:
          Block = I.Ops[0].getId();
          Jumped = true;
          break;
        case Opcode::CondBr:
          Block = operandValue(Fr, I.Ops[0]) != 0 ? I.Ops[1].getId()
                                                  : I.Ops[2].getId();
          Jumped = true;
          break;
        case Opcode::Ret:
          if (!I.Ops.empty())
            ReturnValue = operandValue(Fr, I.Ops[0]);
          Done = true;
          break;
        }
        if (Jumped || Done || !Result.Error.empty())
          break;
      }
      if (!Jumped && !Done && Result.Error.empty()) {
        fail(formatString("block .%s fell through without terminator",
                          B->name().c_str()));
      }
    }

    SP = Fr.SavedSP;
    return ReturnValue;
  }

  const IRModule &M;
  InterpConfig Config;
  std::vector<int64_t> Memory;
  std::vector<uint64_t> GlobalAddress;
  uint64_t SP = 0;
  InterpResult Result;
};

} // namespace

InterpResult urcm::interpretModule(const IRModule &M,
                                   const InterpConfig &Config) {
  Interpreter I(M, Config);
  return I.run();
}
