//===- Dominators.cpp - Dominator tree --------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/Dominators.h"

using namespace urcm;

DominatorTree::DominatorTree(const IRFunction &F, const CFGInfo &CFG)
    : CFG(CFG) {
  uint32_t N = F.numBlocks();
  IDom.assign(N, ~0u);
  if (N == 0)
    return;
  IDom[0] = 0;

  // Cooper–Harvey–Kennedy: intersect along RPO until fixpoint.
  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (CFG.rpoIndex(A) > CFG.rpoIndex(B))
        A = IDom[A];
      while (CFG.rpoIndex(B) > CFG.rpoIndex(A))
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Block : CFG.rpo()) {
      if (Block == 0)
        continue;
      uint32_t NewIDom = ~0u;
      for (uint32_t Pred : CFG.preds(Block)) {
        if (IDom[Pred] == ~0u)
          continue; // Not yet processed.
        NewIDom = NewIDom == ~0u ? Pred : Intersect(Pred, NewIDom);
      }
      if (NewIDom != ~0u && IDom[Block] != NewIDom) {
        IDom[Block] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  if (IDom[A] == ~0u || IDom[B] == ~0u)
    return false;
  // Walk B's idom chain up to the entry.
  while (B != A && B != 0)
    B = IDom[B];
  return B == A;
}
