//===- CallFrequency.cpp - Static call frequency -------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/CallFrequency.h"

#include "urcm/analysis/CFG.h"
#include "urcm/analysis/Dominators.h"
#include "urcm/analysis/Loops.h"

#include <algorithm>

using namespace urcm;

CallFrequencyEstimate::CallFrequencyEstimate(const IRModule &M) {
  const size_t N = M.functions().size();
  Freq.assign(N, 0.0);

  // Weighted call edges: caller -> (callee, 10^loop-depth of call site).
  struct Edge {
    uint32_t Caller;
    uint32_t Callee;
    double Weight;
  };
  std::vector<Edge> Edges;
  for (const auto &F : M.functions()) {
    CFGInfo CFG(*F);
    DominatorTree DT(*F, CFG);
    LoopInfo LI(*F, CFG, DT);
    for (const auto &B : F->blocks())
      for (const Instruction &I : B->insts())
        if (I.isCall())
          Edges.push_back(
              {F->id(), I.Ops[0].getId(), LI.refWeight(B->id())});
  }

  IRFunction *Main = M.findFunction("main");
  uint32_t MainId = Main ? Main->id() : 0;

  // Fixed-point iteration; recursion grows each round and saturates at
  // Cap, which is exactly the behavior we want: recursive helpers are
  // "very hot". Branching recursion (two self-calls) doubles per round
  // and saturates immediately; linear recursion grows by one caller
  // frequency per round, so the round count sets its hotness floor.
  for (unsigned Round = 0; Round != 128; ++Round) {
    std::vector<double> Next(N, 0.0);
    if (MainId < N)
      Next[MainId] = 1.0;
    for (const Edge &E : Edges)
      Next[E.Callee] =
          std::min(Cap, Next[E.Callee] + Freq[E.Caller] * E.Weight);
    if (Next == Freq)
      break;
    Freq = std::move(Next);
  }
}
