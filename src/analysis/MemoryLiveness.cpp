//===- MemoryLiveness.cpp - Location liveness --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/MemoryLiveness.h"

#include "urcm/support/Telemetry.h"

using namespace urcm;

URCM_STAT(NumMemLivenessRuns, "analysis.memliveness.runs",
          "Memory liveness problems solved");
URCM_STAT(NumTrackedLocations, "analysis.memliveness.tracked",
          "Scalar locations tracked for last-ref/dead-store tagging");

MemoryLiveness::MemoryLiveness(const IRModule &M, const IRFunction &F,
                               const CFGInfo &CFG, const AliasInfo &AA) {
  telemetry::ScopedPhase Phase("analysis.memliveness");
  NumMemLivenessRuns.add();
  // Enumerate tracked locations: scalar, non-escaping, non-External
  // objects.
  const uint32_t NumObjects = AA.numObjects();
  std::vector<int32_t> LocOfObject(NumObjects, -1);
  std::vector<bool> LocIsGlobal;
  for (uint32_t G = 0; G != M.globals().size(); ++G) {
    uint32_t Obj = AA.objectForGlobal(G);
    if (M.globals()[G].SizeWords == 1 && !AA.objectEscapes(Obj)) {
      LocOfObject[Obj] = static_cast<int32_t>(NumTracked++);
      LocIsGlobal.push_back(true);
    }
  }
  for (uint32_t S = 0; S != F.frameSlots().size(); ++S) {
    uint32_t Obj = AA.objectForFrame(S);
    if (F.frameSlots()[S].SizeWords == 1 && !AA.objectEscapes(Obj)) {
      LocOfObject[Obj] = static_cast<int32_t>(NumTracked++);
      LocIsGlobal.push_back(false);
    }
  }

  NumTrackedLocations.add(NumTracked);

  Flags.resize(F.numBlocks());
  for (const auto &B : F.blocks())
    Flags[B->id()].resize(B->insts().size());
  if (NumTracked == 0)
    return;

  // Location referenced by a memory instruction, or -1 if untracked. Only
  // whole-scalar direct references (offset 0 on a 1-word object) map to a
  // tracked location.
  auto LocationOf = [&](const Instruction &I) -> int32_t {
    const Operand &Addr = I.addressOperand();
    if (Addr.isGlobal() && Addr.getOffset() == 0)
      return LocOfObject[AA.objectForGlobal(Addr.getId())];
    if (Addr.isFrame() && Addr.getOffset() == 0)
      return LocOfObject[AA.objectForFrame(Addr.getId())];
    return -1;
  };

  // Backward bitvector dataflow.
  std::vector<std::vector<bool>> LiveIn(F.numBlocks(),
                                        std::vector<bool>(NumTracked,
                                                          false));
  std::vector<std::vector<bool>> LiveOut = LiveIn;

  // Exit liveness: globals survive the activation; frame slots do not.
  std::vector<bool> ExitLive(NumTracked, false);
  for (uint32_t Loc = 0; Loc != NumTracked; ++Loc)
    ExitLive[Loc] = LocIsGlobal[Loc];

  auto Transfer = [&](uint32_t Block, std::vector<bool> Live) {
    const auto &Insts = F.block(Block)->insts();
    for (uint32_t I = static_cast<uint32_t>(Insts.size()); I-- > 0;) {
      const Instruction &Inst = Insts[I];
      if (Inst.isCall()) {
        // The callee may read any global it names.
        for (uint32_t Loc = 0; Loc != NumTracked; ++Loc)
          if (LocIsGlobal[Loc])
            Live[Loc] = true;
        continue;
      }
      if (!Inst.isMemAccess())
        continue;
      int32_t Loc = LocationOf(Inst);
      if (Loc < 0)
        continue;
      if (Inst.isStore())
        Live[Loc] = false;
      else
        Live[Loc] = true;
    }
    return Live;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    const auto &Order = CFG.rpo();
    for (auto It = Order.rbegin(), E = Order.rend(); It != E; ++It) {
      uint32_t Block = *It;
      std::vector<bool> Out(NumTracked, false);
      const auto &Succs = CFG.succs(Block);
      if (Succs.empty()) {
        Out = ExitLive;
      } else {
        for (uint32_t Succ : Succs)
          for (uint32_t Loc = 0; Loc != NumTracked; ++Loc)
            if (LiveIn[Succ][Loc])
              Out[Loc] = true;
      }
      if (Out != LiveOut[Block]) {
        LiveOut[Block] = Out;
        Changed = true;
      }
      std::vector<bool> In = Transfer(Block, Out);
      if (In != LiveIn[Block]) {
        LiveIn[Block] = std::move(In);
        Changed = true;
      }
    }
  }

  // Final pass: record per-instruction flags.
  for (const auto &B : F.blocks()) {
    std::vector<bool> Live = LiveOut[B->id()];
    const auto &Insts = B->insts();
    for (uint32_t I = static_cast<uint32_t>(Insts.size()); I-- > 0;) {
      const Instruction &Inst = Insts[I];
      if (Inst.isCall()) {
        for (uint32_t Loc = 0; Loc != NumTracked; ++Loc)
          if (LocIsGlobal[Loc])
            Live[Loc] = true;
        continue;
      }
      if (!Inst.isMemAccess())
        continue;
      int32_t Loc = LocationOf(Inst);
      if (Loc < 0)
        continue;
      RefFlags &RF = Flags[B->id()][I];
      RF.Tracked = true;
      if (Inst.isStore()) {
        RF.DeadStore = !Live[Loc];
        Live[Loc] = false;
      } else {
        RF.LastRef = !Live[Loc];
        Live[Loc] = true;
      }
    }
  }
}

MemoryLiveness::RefFlags MemoryLiveness::flags(uint32_t Block,
                                               uint32_t Index) const {
  if (Block >= Flags.size() || Index >= Flags[Block].size())
    return RefFlags();
  return Flags[Block][Index];
}
