//===- Loops.cpp - Natural loop nesting -------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/Loops.h"

#include <algorithm>
#include <cmath>

using namespace urcm;

LoopInfo::LoopInfo(const IRFunction &F, const CFGInfo &CFG,
                   const DominatorTree &DT) {
  uint32_t N = F.numBlocks();
  Depth.assign(N, 0);

  // A back edge is Tail -> Header where Header dominates Tail. The natural
  // loop is Header plus all blocks that reach Tail without going through
  // Header.
  for (uint32_t Tail = 0; Tail != N; ++Tail) {
    if (!CFG.isReachable(Tail))
      continue;
    for (uint32_t Header : CFG.succs(Tail)) {
      if (!DT.dominates(Header, Tail))
        continue;
      LoopInfoEntry Loop;
      Loop.Header = Header;
      std::vector<bool> InLoop(N, false);
      InLoop[Header] = true;
      std::vector<uint32_t> Work;
      if (Tail != Header) {
        InLoop[Tail] = true;
        Work.push_back(Tail);
      }
      while (!Work.empty()) {
        uint32_t Block = Work.back();
        Work.pop_back();
        for (uint32_t Pred : CFG.preds(Block))
          if (!InLoop[Pred]) {
            InLoop[Pred] = true;
            Work.push_back(Pred);
          }
      }
      for (uint32_t Block = 0; Block != N; ++Block)
        if (InLoop[Block])
          Loop.Blocks.push_back(Block);
      Loops.push_back(std::move(Loop));
    }
  }

  // Merge loops with the same header (multiple back edges) so depth is
  // counted once per header.
  std::sort(Loops.begin(), Loops.end(),
            [](const LoopInfoEntry &A, const LoopInfoEntry &B) {
              return A.Header < B.Header;
            });
  std::vector<LoopInfoEntry> Merged;
  for (auto &Loop : Loops) {
    if (!Merged.empty() && Merged.back().Header == Loop.Header) {
      auto &Dst = Merged.back().Blocks;
      for (uint32_t Block : Loop.Blocks)
        if (std::find(Dst.begin(), Dst.end(), Block) == Dst.end())
          Dst.push_back(Block);
    } else {
      Merged.push_back(std::move(Loop));
    }
  }
  Loops = std::move(Merged);

  for (const auto &Loop : Loops)
    for (uint32_t Block : Loop.Blocks)
      ++Depth[Block];
}

double LoopInfo::refWeight(uint32_t Block) const {
  return std::pow(10.0, std::min<uint32_t>(Depth[Block], 6));
}
