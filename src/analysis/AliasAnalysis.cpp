//===- AliasAnalysis.cpp - Alias sets (paper §4.1.1) -------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/AliasAnalysis.h"

#include "urcm/lang/AST.h"
#include "urcm/support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

using namespace urcm;

URCM_STAT(NumAliasRuns, "analysis.alias.runs",
          "Per-function alias analyses computed");
URCM_STAT(NumEscapedGlobals, "analysis.alias.escaped-globals",
          "Globals whose address escapes direct load/store position");

const char *urcm::aliasKindName(AliasKind Kind) {
  switch (Kind) {
  case AliasKind::True:
    return "true";
  case AliasKind::Intersection:
    return "intersection";
  case AliasKind::Sometimes:
    return "sometimes";
  case AliasKind::Ambiguous:
    return "ambiguous";
  case AliasKind::MutuallyExclusive:
    return "mutually-exclusive";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// ModuleEscapeInfo
//===----------------------------------------------------------------------===//

ModuleEscapeInfo::ModuleEscapeInfo(const IRModule &M) {
  telemetry::ScopedPhase Phase("analysis.escape");
  EscapedGlobals.assign(M.globals().size(), false);
  // A global escapes when its address is materialized anywhere outside a
  // direct Load/Store address position: Mov/arith operands, call
  // arguments, stored values or returned values.
  for (const auto &F : M.functions()) {
    for (const auto &B : F->blocks()) {
      for (const Instruction &I : B->insts()) {
        for (size_t OpIdx = 0, E = I.Ops.size(); OpIdx != E; ++OpIdx) {
          const Operand &O = I.Ops[OpIdx];
          if (!O.isGlobal())
            continue;
          bool IsDirectAddress =
              I.isMemAccess() && &O == &I.addressOperand();
          if (!IsDirectAddress)
            EscapedGlobals[O.getId()] = true;
        }
      }
    }
  }
  if (telemetry::enabled())
    NumEscapedGlobals.add(static_cast<uint64_t>(
        std::count(EscapedGlobals.begin(), EscapedGlobals.end(), true)));
}

//===----------------------------------------------------------------------===//
// AliasInfo
//===----------------------------------------------------------------------===//

AliasInfo::AliasInfo(const IRModule &M, const IRFunction &Fn,
                     const ModuleEscapeInfo &ModuleEscape)
    : F(&Fn) {
  telemetry::ScopedPhase Phase("analysis.alias");
  NumAliasRuns.add();
  NumGlobals = static_cast<uint32_t>(M.globals().size());
  NumFrameSlots = static_cast<uint32_t>(Fn.frameSlots().size());

  ObjectSize.assign(numObjects(), 0);
  for (uint32_t G = 0; G != NumGlobals; ++G)
    ObjectSize[objectForGlobal(G)] = M.globals()[G].SizeWords;
  for (uint32_t S = 0; S != NumFrameSlots; ++S)
    ObjectSize[objectForFrame(S)] = Fn.frameSlots()[S].SizeWords;

  Escaped.assign(numObjects(), false);
  Escaped[externalObject()] = true;
  for (uint32_t G = 0; G != NumGlobals; ++G)
    if (ModuleEscape.globalEscapes(G))
      Escaped[objectForGlobal(G)] = true;

  seedAndPropagate(M, Fn, ModuleEscape);
  buildAliasSets(Fn);
}

namespace {

/// Inserts \p Value into sorted vector \p Set; returns true if added.
bool insertSorted(std::vector<uint32_t> &Set, uint32_t Value) {
  auto It = std::lower_bound(Set.begin(), Set.end(), Value);
  if (It != Set.end() && *It == Value)
    return false;
  Set.insert(It, Value);
  return true;
}

/// Merges \p Src into \p Dst; returns true if \p Dst grew.
bool unionInto(std::vector<uint32_t> &Dst, const std::vector<uint32_t> &Src) {
  bool Grew = false;
  for (uint32_t V : Src)
    Grew |= insertSorted(Dst, V);
  return Grew;
}

} // namespace

void AliasInfo::seedAndPropagate(const IRModule &M, const IRFunction &Fn,
                                 const ModuleEscapeInfo &ModuleEscape) {
  (void)M;
  const uint32_t NumRegs = Fn.numRegs();
  PointsToList.assign(NumRegs, {});

  // "Unknown pointer" target set: External plus every escaped global; a
  // pointer loaded from memory or received as a parameter may reference
  // any of these. Frame slots that escape to memory are added as the
  // fixpoint discovers them.
  std::vector<uint32_t> Unknown;
  Unknown.push_back(externalObject());
  for (uint32_t G = 0; G != NumGlobals; ++G)
    if (ModuleEscape.globalEscapes(G))
      Unknown.push_back(objectForGlobal(G));
  std::sort(Unknown.begin(), Unknown.end());

  // Parameters hold caller values. Frontend type information (when
  // available) tells us which parameters can be pointers at all; integer
  // parameters point at nothing.
  for (uint32_t P = 0; P != Fn.numParams(); ++P) {
    Reg PR = Fn.paramReg(P);
    if (PR >= NumRegs)
      continue;
    bool MayBePointer = true;
    if (const FunctionDecl *Origin = Fn.origin())
      MayBePointer = Origin->params()[P]->type().isPointer();
    if (MayBePointer)
      PointsToList[PR] = Unknown;
  }

  // Whether the function's return value / loaded words may be pointers is
  // unknown in general; results stay conservative below.

  auto ObjectOfOperand = [&](const Operand &O) -> int64_t {
    if (O.isGlobal())
      return objectForGlobal(O.getId());
    if (O.isFrame())
      return objectForFrame(O.getId());
    return -1;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &B : Fn.blocks()) {
      for (const Instruction &I : B->insts()) {
        // Escape: any Global/Frame operand in a non-address position,
        // and any register with a points-to set flowing into memory, a
        // call or a return.
        auto EscapeOperand = [&](const Operand &O) {
          int64_t Obj = ObjectOfOperand(O);
          if (Obj >= 0 && !Escaped[Obj]) {
            Escaped[Obj] = true;
            Changed = true;
            Changed |= insertSorted(Unknown, static_cast<uint32_t>(Obj));
          }
          if (O.isReg())
            for (uint32_t Target : PointsToList[O.getReg()])
              if (!Escaped[Target]) {
                Escaped[Target] = true;
                insertSorted(Unknown, Target);
                Changed = true;
              }
        };

        // Materializing an object's address into a register (any
        // Global/Frame operand outside a Load/Store address position)
        // makes the object reachable under a pointer name: it is no
        // longer unambiguous (paper section 2.1.3).
        auto MarkAddressTaken = [&](const Operand &O) {
          int64_t Obj = ObjectOfOperand(O);
          if (Obj >= 0 && !Escaped[Obj]) {
            Escaped[Obj] = true;
            insertSorted(Unknown, static_cast<uint32_t>(Obj));
            Changed = true;
          }
        };

        switch (I.Op) {
        case Opcode::Mov:
        case Opcode::Add:
        case Opcode::Sub: {
          // Address-preserving data flow.
          std::vector<uint32_t> &Dst = PointsToList[I.Dst];
          for (const Operand &O : I.Ops) {
            int64_t Obj = ObjectOfOperand(O);
            if (Obj >= 0) {
              MarkAddressTaken(O);
              Changed |= insertSorted(Dst, static_cast<uint32_t>(Obj));
            } else if (O.isReg()) {
              Changed |= unionInto(Dst, PointsToList[O.getReg()]);
            }
          }
          break;
        }
        case Opcode::Load:
          // A value read from memory may be any pointer that escaped.
          Changed |= unionInto(PointsToList[I.Dst], Unknown);
          break;
        case Opcode::Store:
          // Storing an address publishes it.
          EscapeOperand(I.Ops[0]);
          break;
        case Opcode::Call: {
          for (size_t A = 1; A != I.Ops.size(); ++A)
            EscapeOperand(I.Ops[A]);
          if (I.Dst != NoReg)
            Changed |= unionInto(PointsToList[I.Dst], Unknown);
          break;
        }
        case Opcode::Ret:
          if (!I.Ops.empty())
            EscapeOperand(I.Ops[0]);
          break;
        default:
          // Other arithmetic on addresses (rare: pointer comparisons,
          // scaled indexing) still propagates conservatively.
          if (I.Dst != NoReg) {
            std::vector<uint32_t> &Dst = PointsToList[I.Dst];
            for (const Operand &O : I.Ops) {
              int64_t Obj = ObjectOfOperand(O);
              if (Obj >= 0) {
                MarkAddressTaken(O);
                Changed |= insertSorted(Dst, static_cast<uint32_t>(Obj));
              } else if (O.isReg()) {
                Changed |= unionInto(Dst, PointsToList[O.getReg()]);
              }
            }
          }
          break;
        }
      }
    }
  }
}

void AliasInfo::buildAliasSets(const IRFunction &Fn) {
  // Union-find over objects.
  std::vector<uint32_t> Parent(numObjects());
  std::iota(Parent.begin(), Parent.end(), 0u);
  std::function<uint32_t(uint32_t)> Find = [&](uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto Merge = [&](uint32_t A, uint32_t B) { Parent[Find(A)] = Find(B); };

  // Any register actually used as a memory address merges its possible
  // targets into one alias set ("sometimes aliases" closure).
  for (const auto &B : Fn.blocks()) {
    for (const Instruction &I : B->insts()) {
      if (!I.isMemAccess())
        continue;
      const Operand &Addr = I.addressOperand();
      if (!Addr.isReg())
        continue;
      const std::vector<uint32_t> &Targets = PointsToList[Addr.getReg()];
      if (Targets.empty()) {
        // Address of unknown provenance: merges with External.
        continue;
      }
      for (size_t T = 1; T < Targets.size(); ++T)
        Merge(Targets[0], Targets[T]);
    }
  }

  // Every escaped object may be reached through External (a caller or a
  // stored pointer), so they share External's set.
  for (uint32_t Obj = 1; Obj != numObjects(); ++Obj)
    if (Escaped[Obj])
      Merge(Obj, externalObject());

  AliasSetOfObject.resize(numObjects());
  for (uint32_t Obj = 0; Obj != numObjects(); ++Obj)
    AliasSetOfObject[Obj] = Find(Obj);
}

AliasInfo::RefDesc AliasInfo::describe(const Instruction &I) const {
  assert(I.isMemAccess() && "describe() needs a Load/Store");
  const Operand &Addr = I.addressOperand();
  RefDesc D;
  switch (Addr.kind()) {
  case Operand::Kind::Global: {
    uint32_t Obj = objectForGlobal(Addr.getId());
    D.Objects.push_back(Obj);
    D.Offset = Addr.getOffset();
    D.OffsetKnown = true;
    D.DirectScalar = ObjectSize[Obj] == 1 && Addr.getOffset() == 0;
    break;
  }
  case Operand::Kind::Frame: {
    uint32_t Obj = objectForFrame(Addr.getId());
    D.Objects.push_back(Obj);
    D.Offset = Addr.getOffset();
    D.OffsetKnown = true;
    D.DirectScalar = ObjectSize[Obj] == 1 && Addr.getOffset() == 0;
    break;
  }
  case Operand::Kind::Reg: {
    const std::vector<uint32_t> &Targets = PointsToList[Addr.getReg()];
    if (Targets.empty())
      D.Objects.push_back(externalObject());
    else
      D.Objects = Targets;
    D.OffsetKnown = false;
    break;
  }
  default:
    assert(false && "invalid address operand");
  }
  return D;
}

bool AliasInfo::isUnambiguous(const Instruction &I) const {
  RefDesc D = describe(I);
  // One precisely known scalar object whose address never escapes: no
  // other name can reach it (paper: mutually exclusive of all others).
  return D.DirectScalar && D.Objects.size() == 1 &&
         !Escaped[D.Objects[0]];
}

int32_t AliasInfo::aliasSetId(const Instruction &I) const {
  RefDesc D = describe(I);
  return static_cast<int32_t>(AliasSetOfObject[D.Objects[0]]);
}

AliasKind AliasInfo::alias(const RefDesc &A, const RefDesc &B) const {
  // Any unknown component forces the conservative answer unless the other
  // side is a provably private object.
  auto HasExternal = [&](const RefDesc &D) {
    return std::find(D.Objects.begin(), D.Objects.end(),
                     externalObject()) != D.Objects.end();
  };

  // Single-object on both sides?
  if (A.Objects.size() == 1 && B.Objects.size() == 1 &&
      !HasExternal(A) && !HasExternal(B)) {
    uint32_t ObjA = A.Objects[0], ObjB = B.Objects[0];
    if (ObjA != ObjB) {
      // Distinct named objects never overlap...
      return AliasKind::MutuallyExclusive;
    }
    // Same object: decide by offsets.
    if (A.OffsetKnown && B.OffsetKnown)
      return A.Offset == B.Offset ? AliasKind::True
                                  : AliasKind::MutuallyExclusive;
    if (ObjectSize[ObjA] == 1)
      return AliasKind::True; // Scalar: any access is the whole object.
    return AliasKind::Sometimes; // a[i] vs a[j].
  }

  // Overlapping possibility sets?
  bool Overlap = false;
  for (uint32_t ObjA : A.Objects)
    if (std::find(B.Objects.begin(), B.Objects.end(), ObjA) !=
        B.Objects.end())
      Overlap = true;
  // External overlaps with anything escaped.
  if (HasExternal(A))
    for (uint32_t ObjB : B.Objects)
      if (Escaped[ObjB])
        Overlap = true;
  if (HasExternal(B))
    for (uint32_t ObjA : A.Objects)
      if (Escaped[ObjA])
        Overlap = true;

  if (!Overlap)
    return AliasKind::MutuallyExclusive;

  // A whole-set containment with multiple candidates is only a partial,
  // data-dependent overlap: the compiler cannot tell.
  return AliasKind::Ambiguous;
}

AliasKind AliasInfo::alias(const Instruction &A,
                           const Instruction &B) const {
  return alias(describe(A), describe(B));
}
