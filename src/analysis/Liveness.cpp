//===- Liveness.cpp - Register liveness -------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/Liveness.h"

#include "urcm/support/Telemetry.h"

using namespace urcm;

URCM_STAT(NumLivenessRuns, "analysis.liveness.runs",
          "Register liveness problems solved");
URCM_STAT(NumLivenessIters, "analysis.liveness.iterations",
          "Backward dataflow passes until fixpoint");

Liveness::Liveness(const IRFunction &F, const CFGInfo &CFG) {
  telemetry::ScopedPhase Phase("analysis.liveness");
  NumLivenessRuns.add();
  const uint32_t NumBlocks = F.numBlocks();
  const uint32_t NumRegs = F.numRegs();
  LiveIn.assign(NumBlocks, std::vector<bool>(NumRegs, false));
  LiveOut.assign(NumBlocks, std::vector<bool>(NumRegs, false));

  // Per-block gen (upward-exposed uses) and kill (defs) sets.
  std::vector<std::vector<bool>> Gen(NumBlocks,
                                     std::vector<bool>(NumRegs, false));
  std::vector<std::vector<bool>> Kill(NumBlocks,
                                      std::vector<bool>(NumRegs, false));
  std::vector<Reg> Uses;
  for (const auto &B : F.blocks()) {
    auto &G = Gen[B->id()];
    auto &K = Kill[B->id()];
    for (const Instruction &I : B->insts()) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        if (!K[R])
          G[R] = true;
      if (I.Dst != NoReg)
        K[I.Dst] = true;
    }
  }

  // Backward fixpoint, iterating blocks in postorder for fast convergence.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    NumLivenessIters.add();
    const auto &Order = CFG.rpo();
    for (auto It = Order.rbegin(), E = Order.rend(); It != E; ++It) {
      uint32_t Block = *It;
      std::vector<bool> &Out = LiveOut[Block];
      for (uint32_t Succ : CFG.succs(Block)) {
        const std::vector<bool> &In = LiveIn[Succ];
        for (uint32_t R = 0; R != NumRegs; ++R)
          if (In[R] && !Out[R]) {
            Out[R] = true;
            Changed = true;
          }
      }
      std::vector<bool> &In = LiveIn[Block];
      for (uint32_t R = 0; R != NumRegs; ++R) {
        bool NewIn = Gen[Block][R] || (Out[R] && !Kill[Block][R]);
        if (NewIn != In[R]) {
          In[R] = NewIn;
          Changed = true;
        }
      }
    }
  }
}
