//===- CFG.cpp - Control-flow graph utilities ------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/CFG.h"

#include <algorithm>

using namespace urcm;

CFGInfo::CFGInfo(const IRFunction &F) {
  uint32_t N = F.numBlocks();
  Preds.resize(N);
  Succs.resize(N);
  RPOIndex.assign(N, ~0u);

  for (const auto &B : F.blocks()) {
    Succs[B->id()] = B->successors();
    for (uint32_t S : Succs[B->id()])
      Preds[S].push_back(B->id());
  }

  // Iterative postorder DFS from entry.
  std::vector<uint8_t> State(N, 0); // 0 = unvisited, 1 = open, 2 = done.
  std::vector<std::pair<uint32_t, uint32_t>> Stack; // (block, next succ).
  std::vector<uint32_t> Postorder;
  Stack.push_back({0, 0});
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    if (NextSucc < Succs[Block].size()) {
      uint32_t S = Succs[Block][NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      Postorder.push_back(Block);
      State[Block] = 2;
      Stack.pop_back();
    }
  }

  RPO.assign(Postorder.rbegin(), Postorder.rend());
  for (uint32_t I = 0, E = static_cast<uint32_t>(RPO.size()); I != E; ++I)
    RPOIndex[RPO[I]] = I;

  // Prune predecessor edges from unreachable blocks so dataflow analyses
  // never meet over them.
  for (uint32_t Block = 0; Block != N; ++Block) {
    auto &P = Preds[Block];
    P.erase(std::remove_if(P.begin(), P.end(),
                           [&](uint32_t Pred) {
                             return RPOIndex[Pred] == ~0u;
                           }),
            P.end());
  }
}
