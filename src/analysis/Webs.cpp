//===- Webs.cpp - Value webs (paper Definition 2) ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/Webs.h"

#include "urcm/support/Telemetry.h"

#include <map>
#include <numeric>

using namespace urcm;

URCM_STAT(NumWebsBuilt, "analysis.webs.built",
          "Value webs constructed (paper Definition 2)");

namespace {

/// Minimal union-find.
class UnionFind {
public:
  explicit UnionFind(uint32_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0u);
  }
  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(uint32_t A, uint32_t B) { Parent[find(A)] = find(B); }

private:
  std::vector<uint32_t> Parent;
};

} // namespace

WebAnalysis::WebAnalysis(const IRFunction &F, const CFGInfo &CFG,
                         const ReachingDefs &RD) {
  telemetry::ScopedPhase Phase("analysis.webs");
  (void)CFG;
  const uint32_t NumDefs = static_cast<uint32_t>(RD.defs().size());
  UnionFind UF(NumDefs);

  // For every use, merge all defs that reach it (Definition 2: if two U-D
  // chains intersect, they are one value).
  struct UseRecord {
    UseSite Site;
    std::vector<uint32_t> ReachingDefIds;
  };
  std::vector<UseRecord> UseRecords;
  std::vector<Reg> Uses;
  for (const auto &B : F.blocks()) {
    for (uint32_t I = 0, E = static_cast<uint32_t>(B->insts().size());
         I != E; ++I) {
      Uses.clear();
      B->insts()[I].appendUses(Uses);
      for (Reg R : Uses) {
        UseRecord Rec;
        Rec.Site = UseSite{R, B->id(), I};
        Rec.ReachingDefIds = RD.reachingDefsAt(F, B->id(), I, R);
        for (size_t D = 1; D < Rec.ReachingDefIds.size(); ++D)
          UF.merge(Rec.ReachingDefIds[0], Rec.ReachingDefIds[D]);
        UseRecords.push_back(std::move(Rec));
      }
    }
  }

  // Group defs by representative into webs.
  std::map<uint32_t, uint32_t> RepToWeb;
  WebOfDef.assign(NumDefs, ~0u);
  for (uint32_t DefId = 0; DefId != NumDefs; ++DefId) {
    uint32_t Rep = UF.find(DefId);
    auto [It, Inserted] =
        RepToWeb.try_emplace(Rep, static_cast<uint32_t>(Webs.size()));
    if (Inserted) {
      Web W;
      W.Register = RD.defs()[DefId].Register;
      Webs.push_back(std::move(W));
    }
    uint32_t WebId = It->second;
    WebOfDef[DefId] = WebId;
    Webs[WebId].DefIds.push_back(DefId);
    if (RD.defs()[DefId].isParam())
      Webs[WebId].IncludesParam = true;
  }

  for (const UseRecord &Rec : UseRecords) {
    if (Rec.ReachingDefIds.empty())
      continue; // Verifier rejects this; be defensive anyway.
    Webs[WebOfDef[Rec.ReachingDefIds[0]]].Uses.push_back(Rec.Site);
  }

  NumWebsBuilt.add(Webs.size());
}
