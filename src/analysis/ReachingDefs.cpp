//===- ReachingDefs.cpp - Reaching definitions -------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/ReachingDefs.h"

using namespace urcm;

ReachingDefs::ReachingDefs(const IRFunction &F, const CFGInfo &CFG) {
  const uint32_t NumBlocks = F.numBlocks();
  const uint32_t NumRegs = F.numRegs();

  // Enumerate definition sites: parameter pseudo-defs first, then
  // instruction defs in block order.
  DefsOfReg.resize(NumRegs);
  for (uint32_t P = 0; P != F.numParams(); ++P) {
    Reg PR = F.paramReg(P);
    DefsOfReg[PR].push_back(static_cast<uint32_t>(Defs.size()));
    Defs.push_back(DefSite{PR, 0, ~0u});
  }
  for (const auto &B : F.blocks())
    for (uint32_t I = 0, E = static_cast<uint32_t>(B->insts().size());
         I != E; ++I) {
      Reg D = B->insts()[I].Dst;
      if (D == NoReg)
        continue;
      DefsOfReg[D].push_back(static_cast<uint32_t>(Defs.size()));
      Defs.push_back(DefSite{D, B->id(), I});
    }

  const uint32_t NumDefs = static_cast<uint32_t>(Defs.size());
  In.assign(NumBlocks, std::vector<bool>(NumDefs, false));
  std::vector<std::vector<bool>> Out(NumBlocks,
                                     std::vector<bool>(NumDefs, false));

  // Per-block transfer: Out = Gen U (In - Kill). Compute Gen/Kill.
  std::vector<std::vector<bool>> Gen(NumBlocks,
                                     std::vector<bool>(NumDefs, false));
  std::vector<std::vector<bool>> KillRegs(
      NumBlocks, std::vector<bool>(NumRegs, false));
  for (uint32_t DefId = 0; DefId != NumDefs; ++DefId) {
    const DefSite &D = Defs[DefId];
    if (D.isParam())
      continue;
    KillRegs[D.Block][D.Register] = true;
  }
  // Gen: the *last* def of each register in the block.
  for (const auto &B : F.blocks()) {
    std::vector<uint32_t> LastDef(NumRegs, ~0u);
    for (uint32_t DefId = 0; DefId != NumDefs; ++DefId) {
      const DefSite &D = Defs[DefId];
      if (!D.isParam() && D.Block == B->id())
        LastDef[D.Register] = DefId;
    }
    for (uint32_t R = 0; R != NumRegs; ++R)
      if (LastDef[R] != ~0u)
        Gen[B->id()][LastDef[R]] = true;
  }

  // Entry generates the parameter pseudo-defs.
  std::vector<bool> EntryIn(NumDefs, false);
  for (uint32_t P = 0; P != F.numParams(); ++P)
    EntryIn[P] = true;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Block : CFG.rpo()) {
      std::vector<bool> NewIn =
          Block == 0 ? EntryIn : std::vector<bool>(NumDefs, false);
      for (uint32_t Pred : CFG.preds(Block))
        for (uint32_t DefId = 0; DefId != NumDefs; ++DefId)
          if (Out[Pred][DefId])
            NewIn[DefId] = true;
      if (NewIn != In[Block]) {
        In[Block] = NewIn;
        Changed = true;
      }
      std::vector<bool> NewOut = Gen[Block];
      for (uint32_t DefId = 0; DefId != NumDefs; ++DefId)
        if (In[Block][DefId] && !KillRegs[Block][Defs[DefId].Register])
          NewOut[DefId] = true;
      if (NewOut != Out[Block]) {
        Out[Block] = NewOut;
        Changed = true;
      }
    }
  }
}

std::vector<uint32_t> ReachingDefs::reachingDefsAt(const IRFunction &F,
                                                   uint32_t Block,
                                                   uint32_t Index,
                                                   Reg R) const {
  // Scan the block prefix: the last def of R before Index wins.
  const auto &Insts = F.block(Block)->insts();
  uint32_t LastLocal = ~0u;
  for (uint32_t I = 0; I < Index && I < Insts.size(); ++I)
    if (Insts[I].Dst == R)
      LastLocal = I;
  std::vector<uint32_t> Result;
  if (LastLocal != ~0u) {
    // Find the def id of that site.
    for (uint32_t DefId : DefsOfReg[R]) {
      const DefSite &D = Defs[DefId];
      if (!D.isParam() && D.Block == Block && D.Index == LastLocal)
        Result.push_back(DefId);
    }
    return Result;
  }
  for (uint32_t DefId : DefsOfReg[R])
    if (In[Block][DefId])
      Result.push_back(DefId);
  return Result;
}
