//===- UnifiedManagement.cpp - The paper's core pass --------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/core/UnifiedManagement.h"

#include "urcm/analysis/AliasAnalysis.h"
#include "urcm/analysis/CallFrequency.h"
#include "urcm/analysis/Loops.h"
#include "urcm/analysis/MemoryLiveness.h"
#include "urcm/pass/Analyses.h"
#include "urcm/support/StringUtils.h"
#include "urcm/support/Telemetry.h"

#include <unordered_map>

using namespace urcm;

URCM_STAT(NumRefsClassified, "unified.refs",
          "Memory references classified by the unified pass");
URCM_STAT(NumUnambiguous, "unified.unambiguous",
          "References proven unambiguous");
URCM_STAT(NumAmbiguous, "unified.ambiguous",
          "References left ambiguous");
URCM_STAT(NumSpillRefs, "unified.spill-refs",
          "Spill/reload references from the register allocator");
URCM_STAT(NumBypass, "unified.bypass",
          "References marked cache-bypass (UmAm forms)");
URCM_STAT(NumLastRef, "unified.lastref-tags",
          "Loads tagged as the last read of their location");
URCM_STAT(NumDeadStore, "unified.deadstore-tags",
          "Stores tagged dead-on-arrival");

namespace {

/// Builds the -Rurcm-classify record for one classified reference.
/// Only called behind a non-null classifySink().
telemetry::ClassifyRemark
makeRemark(const IRFunction &F, const Instruction &I,
           const MemRefInfo &Info, const UnifiedOptions &Options) {
  telemetry::ClassifyRemark R;
  R.Function = F.name();
  R.Line = I.Loc.Line;
  R.Col = I.Loc.Col;
  R.Bypass = Info.Bypass;
  R.LastRef = Info.LastRef;
  R.AliasSet = Info.AliasSetId;

  // Paper reference forms (section 4.3): bypassing traffic uses the
  // UmAm forms; cached loads are Am_LOAD, cached stores AmSp_STORE.
  if (I.isLoad())
    R.Form = Info.Bypass ? "UmAm_LOAD" : "Am_LOAD";
  else
    R.Form = Info.Bypass ? "UmAm_STORE" : "AmSp_STORE";

  switch (Info.Class) {
  case RefClass::Unambiguous:
    R.Verdict = "unambiguous";
    break;
  case RefClass::Ambiguous:
    R.Verdict = "ambiguous";
    break;
  case RefClass::Spill:
    R.Verdict = "spill";
    break;
  case RefClass::SpillReload:
    R.Verdict = "spill-reload";
    break;
  case RefClass::Unknown:
    R.Verdict = "unknown";
    break;
  }

  if (Info.Bypass)
    R.Reason = "unambiguous";
  else if (Info.Class == RefClass::Ambiguous)
    R.Reason = "ambiguous-alias";
  else if (Info.Class == RefClass::Spill)
    R.Reason = "spill";
  else if (Info.Class == RefClass::SpillReload)
    R.Reason = "spill-reload";
  else if (!Options.EnableBypass)
    R.Reason = "hints-disabled";
  else
    R.Reason = "reuse-hot";

  if (Info.LastRef)
    R.DeadReason = I.isLoad() ? "last-read" : "dead-store";
  return R;
}

} // namespace

namespace {

/// Loop-weighted reference weight per abstract object, used by the
/// ReuseAware bypass policy: hot locations (reused inside loops) stay
/// cached, cold ones bypass. Loop weights come from the caller's cached
/// LoopInfo rather than a private CFG + dominators + loops rebuild.
std::unordered_map<uint32_t, double>
computeReuseWeights(const IRFunction &F, const LoopInfo &LI,
                    const AliasInfo &AA, double FunctionFrequency) {
  std::unordered_map<uint32_t, double> Weight;
  for (const auto &B : F.blocks()) {
    double W = LI.refWeight(B->id()) * FunctionFrequency;
    for (const Instruction &I : B->insts()) {
      if (!I.isMemAccess())
        continue;
      const Operand &Addr = I.addressOperand();
      if (Addr.isGlobal())
        Weight[AA.objectForGlobal(Addr.getId())] += W;
      else if (Addr.isFrame())
        Weight[AA.objectForFrame(Addr.getId())] += W;
    }
  }
  return Weight;
}

} // namespace

std::string ClassificationStats::str() const {
  return formatString(
      "refs: total=%llu unambiguous=%llu ambiguous=%llu spill=%llu "
      "(unambiguous %.1f%%), bypass=%llu lastref=%llu deadstore=%llu",
      static_cast<unsigned long long>(totalRefs()),
      static_cast<unsigned long long>(UnambiguousRefs),
      static_cast<unsigned long long>(AmbiguousRefs),
      static_cast<unsigned long long>(SpillRefs),
      unambiguousFraction() * 100.0,
      static_cast<unsigned long long>(BypassRefs),
      static_cast<unsigned long long>(LastRefTags),
      static_cast<unsigned long long>(DeadStoreTags));
}

ClassificationStats
urcm::applyUnifiedManagement(IRModule &M, const UnifiedOptions &Options) {
  AnalysisManager AM(M);
  return applyUnifiedManagement(M, Options, AM);
}

ClassificationStats
urcm::applyUnifiedManagement(IRModule &M, const UnifiedOptions &Options,
                             AnalysisManager &AM) {
  ClassificationStats Stats;

  for (const auto &F : M.functions()) {
    const AliasInfo &AA = AM.get<AliasAnalysisInfo>(*F);
    const MemoryLiveness &ML = AM.get<MemoryLivenessAnalysis>(*F);
    std::unordered_map<uint32_t, double> ReuseWeight;
    if (Options.Policy == BypassPolicy::ReuseAware) {
      const CallFrequencyEstimate &Frequencies =
          AM.getModule<CallFrequencyAnalysis>();
      ReuseWeight = computeReuseWeights(*F, AM.get<LoopAnalysis>(*F), AA,
                                        Frequencies.frequency(F->id()));
    }

    auto ShouldBypass = [&](const Instruction &I) {
      if (!Options.EnableBypass)
        return false;
      if (Options.Policy == BypassPolicy::AllUnambiguous)
        return true;
      const Operand &Addr = I.addressOperand();
      uint32_t Obj = Addr.isGlobal()
                         ? AA.objectForGlobal(Addr.getId())
                         : AA.objectForFrame(Addr.getId());
      auto It = ReuseWeight.find(Obj);
      double W = It == ReuseWeight.end() ? 0.0 : It->second;
      return W < Options.ReuseThreshold;
    };

    for (const auto &B : F->blocks()) {
      for (uint32_t Index = 0; Index != B->insts().size(); ++Index) {
        Instruction &I = B->insts()[Index];
        if (!I.isMemAccess())
          continue;

        MemRefInfo &Info = I.MemInfo;

        // 1. Classification. Spill classes were assigned by the register
        //    allocator and are kept; everything else is decided by alias
        //    analysis.
        if (Info.Class != RefClass::Spill &&
            Info.Class != RefClass::SpillReload) {
          Info.Class = AA.isUnambiguous(I) ? RefClass::Unambiguous
                                           : RefClass::Ambiguous;
          Info.AliasSetId = static_cast<int16_t>(AA.aliasSetId(I));
        }

        switch (Info.Class) {
        case RefClass::Unambiguous:
          ++Stats.UnambiguousRefs;
          break;
        case RefClass::Ambiguous:
          ++Stats.AmbiguousRefs;
          break;
        case RefClass::Spill:
        case RefClass::SpillReload:
          ++Stats.SpillRefs;
          break;
        case RefClass::Unknown:
          break;
        }

        // 2. Bypass bit (paper section 4.3):
        //    UmAm_LOAD / UmAm_STORE bypass; Am_LOAD / AmSp_STORE and all
        //    spill traffic go through the cache. Under ReuseAware, hot
        //    unambiguous locations also stay cached (section 4.2: cache
        //    is used only where it may improve performance).
        Info.Bypass =
            Info.Class == RefClass::Unambiguous && ShouldBypass(I);
        if (Info.Bypass)
          ++Stats.BypassRefs;

        // 3. Last-reference bit (paper section 3.1): set on the final
        //    read of a tracked location, and implicitly on every spill
        //    reload whose slot is dead afterwards (section 4.2 rule [3]).
        MemoryLiveness::RefFlags Flags = ML.flags(B->id(), Index);
        Info.LastRef = false;
        if (Options.EnableDeadTag && Flags.Tracked) {
          if (I.isLoad() && Flags.LastRef) {
            Info.LastRef = true;
            ++Stats.LastRefTags;
          } else if (I.isStore() && Flags.DeadStore) {
            // A store never read again: the line is dead on arrival. The
            // hardware may install it as immediately-reclaimable.
            Info.LastRef = true;
            ++Stats.DeadStoreTags;
          }
        }

        if (telemetry::RemarkSink *Sink = telemetry::classifySink())
          Sink->remark(makeRemark(*F, I, Info, Options));
      }
    }
  }

  NumRefsClassified.add(Stats.totalRefs());
  NumUnambiguous.add(Stats.UnambiguousRefs);
  NumAmbiguous.add(Stats.AmbiguousRefs);
  NumSpillRefs.add(Stats.SpillRefs);
  NumBypass.add(Stats.BypassRefs);
  NumLastRef.add(Stats.LastRefTags);
  NumDeadStore.add(Stats.DeadStoreTags);
  return Stats;
}
