//===- Driver.cpp - End-to-end compiler driver ---------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"

#include "urcm/pass/Passes.h"
#include "urcm/pass/Pipeline.h"
#include "urcm/support/Telemetry.h"

using namespace urcm;

URCM_STAT(NumProgramsCompiled, "compile.programs",
          "End-to-end compilations through the driver");

CompileResult urcm::compileProgram(const std::string &Source,
                                   const CompileOptions &Options,
                                   DiagnosticEngine &Diags) {
  telemetry::ScopedPhase Phase("compile");
  NumProgramsCompiled.add();
  CompileResult Result;
  {
    telemetry::ScopedPhase Frontend("compile.frontend");
    Result.Module = compileToIR(Source, Diags, Options.IRGen);
  }
  if (!Result.Module)
    return Result;
  IRModule &M = *Result.Module.IR;

  // The pipeline is declarative from here on: resolve the pass text,
  // hand verification/printing to the pass-manager instrumentation and
  // analysis reuse to the manager's cache.
  PassManager PM;
  std::string Text =
      Options.Passes.empty()
          ? defaultPipelineText(Options.PromoteLoopScalars,
                                Options.RunCleanup)
          : Options.Passes;
  std::string Error;
  if (!parsePassPipeline(PM, Text, Error)) {
    Diags.error(SourceLoc(), "invalid pass pipeline: " + Error);
    return Result;
  }

  PassManager::Instrumentation Instr;
  Instr.VerifyEach = Options.VerifyIR;
  Instr.PrintAfterAll = Options.PrintAfterAll;
  Instr.Diags = &Diags;
  PM.setInstrumentation(Instr);

  PipelineState State;
  State.Transforms = Options.Transforms;
  State.RegAlloc = Options.RegAlloc;
  State.Scheme = Options.Scheme;
  State.CodeGen.Hints = Options.Scheme;
  State.CodeGen.GlobalBase = Options.GlobalBase;
  State.CodeGen.StackTop = Options.StackTop;
  State.Diags = &Diags;

  AnalysisManager AM(M);
  bool Ok = PM.run(M, AM, State);

  Result.Promotion = State.Promotion;
  Result.Transforms = State.Cleanup;
  Result.RegAlloc = State.Alloc;
  Result.Static = State.Static;
  if (!Ok)
    return Result;

  Result.Program = std::move(State.Program);
  Result.Program.NumAllocatableRegs = Options.RegAlloc.NumColors;
  Result.Ok = true;
  return Result;
}

SimResult urcm::compileAndRun(const std::string &Source,
                              const CompileOptions &Options,
                              const SimConfig &Sim,
                              DiagnosticEngine &Diags) {
  CompileResult Compiled = compileProgram(Source, Options, Diags);
  if (!Compiled.Ok) {
    SimResult Failed;
    Failed.Error = "compilation failed:\n" + Diags.str();
    return Failed;
  }
  Simulator S(Sim);
  return S.run(Compiled.Program);
}

double SchemeComparison::cacheTrafficReductionPercent() const {
  uint64_t Base = Conventional.Cache.cacheTraffic();
  if (Base == 0)
    return 0.0;
  double Reduced = static_cast<double>(Base) -
                   static_cast<double>(Unified.Cache.cacheTraffic());
  return 100.0 * Reduced / static_cast<double>(Base);
}

double SchemeComparison::busTrafficReductionPercent() const {
  uint64_t Base = Conventional.Cache.busTraffic();
  if (Base == 0)
    return 0.0;
  double Reduced = static_cast<double>(Base) -
                   static_cast<double>(Unified.Cache.busTraffic());
  return 100.0 * Reduced / static_cast<double>(Base);
}

double SchemeComparison::dynamicUnambiguousPercent() const {
  return Unified.Refs.unambiguousFraction() * 100.0;
}

SchemeComparison urcm::compareSchemes(const std::string &Source,
                                      const CompileOptions &BaseOptions,
                                      const CacheConfig &Cache) {
  SchemeComparison Result;

  SimConfig Sim;
  Sim.Cache = Cache;

  // Keep the caller's bypass policy / threshold; only toggle the hints.
  CompileOptions Conventional = BaseOptions;
  Conventional.Scheme.EnableBypass = false;
  Conventional.Scheme.EnableDeadTag = false;
  DiagnosticEngine DiagsConv;
  Result.Conventional =
      compileAndRun(Source, Conventional, Sim, DiagsConv);

  CompileOptions Unified = BaseOptions;
  Unified.Scheme.EnableBypass = true;
  Unified.Scheme.EnableDeadTag = true;
  DiagnosticEngine DiagsUni;
  CompileResult Compiled = compileProgram(Source, Unified, DiagsUni);
  if (!Compiled.Ok) {
    Result.Error = "unified compilation failed:\n" + DiagsUni.str();
    return Result;
  }
  Result.StaticStats = Compiled.Static;
  Simulator S(Sim);
  Result.Unified = S.run(Compiled.Program);

  if (!Result.Conventional.ok()) {
    Result.Error = "conventional run failed: " + Result.Conventional.Error;
    return Result;
  }
  if (!Result.Unified.ok()) {
    Result.Error = "unified run failed: " + Result.Unified.Error;
    return Result;
  }
  if (Result.Conventional.Output != Result.Unified.Output) {
    Result.Error = "scheme outputs diverge (unsound hints?)";
    return Result;
  }
  if (Result.Unified.CoherenceViolations != 0 ||
      Result.Conventional.CoherenceViolations != 0) {
    Result.Error = "coherence violations detected";
    return Result;
  }
  return Result;
}
