//===- IRGen.cpp - AST to IR lowering -------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/irgen/IRGen.h"

#include "urcm/lang/Sema.h"
#include "urcm/support/StringUtils.h"

#include <optional>
#include <unordered_map>

using namespace urcm;

namespace {

/// Where an MC variable lives in the IR.
struct VarStorage {
  enum class Kind { Register, Frame, Global };
  Kind StorageKind;
  /// Register number (Kind::Register), frame slot id (Kind::Frame) or
  /// global id (Kind::Global).
  uint32_t Id;
};

class FunctionIRGen {
public:
  FunctionIRGen(const TranslationUnit &TU, IRModule &M, IRFunction &F,
                const FunctionDecl &Decl,
                const std::unordered_map<const VarDecl *, uint32_t> &Globals,
                const std::unordered_map<const FunctionDecl *, uint32_t>
                    &FuncIds,
                const IRGenOptions &Options)
      : TU(TU), M(M), F(F), Decl(Decl), GlobalIds(Globals),
        FuncIds(FuncIds), Options(Options) {}

  void run() {
    Cur = F.addBlock("entry");
    bindParams();
    genStmt(*Decl.body());
    // Fall-through return for functions whose body can reach the end.
    if (!Cur->isTerminated()) {
      if (F.returnsValue())
        emit(Opcode::Ret, NoReg, {Operand::imm(0)});
      else
        emit(Opcode::Ret, NoReg, {});
    }
    clearUnreachableBlocks();
  }

private:
  //===--------------------------------------------------------------------===
  // Emission helpers
  //===--------------------------------------------------------------------===

  void emit(Opcode Op, Reg Dst, std::vector<Operand> Ops,
            SourceLoc Loc = SourceLoc()) {
    // Dead code after a terminator (e.g. code following `return`) is
    // dropped; the block is already complete.
    if (Cur->isTerminated())
      return;
    Cur->insts().push_back(Instruction(Op, Dst, std::move(Ops), Loc));
  }

  Reg emitToNewReg(Opcode Op, std::vector<Operand> Ops,
                   SourceLoc Loc = SourceLoc()) {
    Reg Dst = F.newReg();
    emit(Op, Dst, std::move(Ops), Loc);
    return Dst;
  }

  BasicBlock *newBlock(const std::string &Hint) {
    return F.addBlock(formatString("%s%u", Hint.c_str(), NextBlockSuffix++));
  }

  void setInsertPoint(BasicBlock *B) { Cur = B; }

  /// Constant-folded conditions can leave whole regions unreachable;
  /// their bodies may use registers never assigned on any live path,
  /// which would confuse the definite-assignment checks and the web
  /// builder. Replace each unreachable block's body with a bare return.
  void clearUnreachableBlocks() {
    std::vector<bool> Reachable(F.numBlocks(), false);
    std::vector<uint32_t> Work{0};
    Reachable[0] = true;
    while (!Work.empty()) {
      uint32_t Block = Work.back();
      Work.pop_back();
      for (uint32_t Succ : F.block(Block)->successors())
        if (!Reachable[Succ]) {
          Reachable[Succ] = true;
          Work.push_back(Succ);
        }
    }
    for (const auto &B : F.blocks()) {
      if (Reachable[B->id()])
        continue;
      B->insts().clear();
      if (F.returnsValue())
        B->insts().push_back(
            Instruction(Opcode::Ret, NoReg, {Operand::imm(0)}));
      else
        B->insts().push_back(Instruction(Opcode::Ret, NoReg, {}));
    }
  }

  void branchTo(BasicBlock *B) {
    emit(Opcode::Br, NoReg, {Operand::block(B->id())});
  }

  /// Materializes \p Op into a register if it is not one already.
  Reg asReg(const Operand &Op) {
    if (Op.isReg() && Op.getOffset() == 0)
      return Op.getReg();
    return emitToNewReg(Opcode::Mov, {Op});
  }

  //===--------------------------------------------------------------------===
  // Variable storage
  //===--------------------------------------------------------------------===

  void bindParams() {
    uint32_t Index = 0;
    for (const auto &P : Decl.params()) {
      Reg Incoming = Index++; // Convention: params arrive in r0..rN-1.
      F.newReg();             // Reserve the incoming register number.
      if (P->isAddressTaken() || Options.ScalarLocalsInMemory) {
        uint32_t Slot = F.addFrameSlot(
            IRFrameSlot{P->name(), 1, FrameSlotKind::LocalVar, P.get(), 0});
        Storage[P.get()] = {VarStorage::Kind::Frame, Slot};
        emit(Opcode::Store,
             NoReg, {Operand::reg(Incoming), Operand::frame(Slot)});
      } else {
        Storage[P.get()] = {VarStorage::Kind::Register, Incoming};
      }
    }
  }

  VarStorage storageFor(const VarDecl *V) {
    auto It = Storage.find(V);
    if (It != Storage.end())
      return It->second;
    auto GlobalIt = GlobalIds.find(V);
    if (GlobalIt != GlobalIds.end()) {
      VarStorage S{VarStorage::Kind::Global, GlobalIt->second};
      Storage[V] = S;
      return S;
    }
    // First sighting of a local: allocate its home.
    VarStorage S{};
    if (V->type().isScalar() && !V->isAddressTaken() &&
        !Options.ScalarLocalsInMemory) {
      S = {VarStorage::Kind::Register, F.newReg()};
    } else {
      uint32_t Slot = F.addFrameSlot(IRFrameSlot{
          V->name(), V->type().sizeInWords(), FrameSlotKind::LocalVar, V,
          0});
      S = {VarStorage::Kind::Frame, Slot};
    }
    Storage[V] = S;
    return S;
  }

  //===--------------------------------------------------------------------===
  // L-values
  //===--------------------------------------------------------------------===

  /// A resolved l-value: either a register home or a memory address
  /// operand usable by Load/Store.
  struct LValue {
    bool IsRegister;
    Reg Home = NoReg;  // When IsRegister.
    Operand Address;   // When !IsRegister.
  };

  LValue genLValue(const Expr &E) {
    if (const auto *V = dyn_cast<VarRefExpr>(&E)) {
      VarStorage S = storageFor(V->decl());
      switch (S.StorageKind) {
      case VarStorage::Kind::Register:
        return LValue{true, S.Id, Operand()};
      case VarStorage::Kind::Frame:
        return LValue{false, NoReg, Operand::frame(S.Id)};
      case VarStorage::Kind::Global:
        return LValue{false, NoReg, Operand::global(S.Id)};
      }
    }
    if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
      assert(U->op() == UnaryOp::Deref && "not an l-value unary");
      Operand Ptr = genExpr(*U->operand());
      return LValue{false, NoReg, Operand::reg(asReg(Ptr))};
    }
    const auto *I = cast<IndexExpr>(&E);
    return LValue{false, NoReg, genElementAddress(*I)};
  }

  /// Computes the address operand for base[index].
  Operand genElementAddress(const IndexExpr &E) {
    // Fold a constant index into the addressing-mode offset.
    const auto *ConstIndex = dyn_cast<IntLiteralExpr>(E.index());

    // Direct base: a named array (global or frame) indexes with no
    // explicit address arithmetic when the index is constant.
    if (const auto *V = dyn_cast<VarRefExpr>(E.base())) {
      if (V->decl()->type().isArray()) {
        VarStorage S = storageFor(V->decl());
        assert(S.StorageKind != VarStorage::Kind::Register &&
               "array cannot be register resident");
        bool IsGlobal = S.StorageKind == VarStorage::Kind::Global;
        if (ConstIndex) {
          int32_t Off = static_cast<int32_t>(ConstIndex->value());
          return IsGlobal ? Operand::global(S.Id, Off)
                          : Operand::frame(S.Id, Off);
        }
        Operand Index = genExpr(*E.index());
        Operand Base = IsGlobal ? Operand::global(S.Id)
                                : Operand::frame(S.Id);
        Reg Addr = emitToNewReg(Opcode::Add, {Base, Index});
        return Operand::reg(Addr);
      }
    }

    // Pointer base: compute the pointer value, then offset.
    Operand Base = genExpr(*E.base());
    if (ConstIndex)
      return Operand::reg(asReg(Base),
                          static_cast<int32_t>(ConstIndex->value()));
    Operand Index = genExpr(*E.index());
    Reg Addr = emitToNewReg(Opcode::Add, {Base, Index});
    return Operand::reg(Addr);
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  Operand genExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLiteral:
      return Operand::imm(cast<IntLiteralExpr>(&E)->value());
    case Expr::Kind::VarRef: {
      const auto *V = cast<VarRefExpr>(&E);
      VarStorage S = storageFor(V->decl());
      switch (S.StorageKind) {
      case VarStorage::Kind::Register:
        return Operand::reg(S.Id);
      case VarStorage::Kind::Frame:
        if (V->decl()->type().isArray()) // Decay: address of slot.
          return Operand::reg(
              emitToNewReg(Opcode::Mov, {Operand::frame(S.Id)}));
        return Operand::reg(
            emitToNewReg(Opcode::Load, {Operand::frame(S.Id)}, E.loc()));
      case VarStorage::Kind::Global:
        if (V->decl()->type().isArray())
          return Operand::reg(
              emitToNewReg(Opcode::Mov, {Operand::global(S.Id)}));
        return Operand::reg(
            emitToNewReg(Opcode::Load, {Operand::global(S.Id)}, E.loc()));
      }
      return Operand::imm(0);
    }
    case Expr::Kind::Unary:
      return genUnary(*cast<UnaryExpr>(&E));
    case Expr::Kind::Binary:
      return genBinary(*cast<BinaryExpr>(&E));
    case Expr::Kind::Index: {
      Operand Addr = genElementAddress(*cast<IndexExpr>(&E));
      return Operand::reg(emitToNewReg(Opcode::Load, {Addr}, E.loc()));
    }
    case Expr::Kind::Call:
      return genCall(*cast<CallExpr>(&E));
    }
    return Operand::imm(0);
  }

  Operand genUnary(const UnaryExpr &E) {
    switch (E.op()) {
    case UnaryOp::Neg: {
      Operand Op = genExpr(*E.operand());
      if (Op.isImm())
        return Operand::imm(-Op.getImm());
      return Operand::reg(emitToNewReg(Opcode::Neg, {Op}));
    }
    case UnaryOp::BitNot: {
      Operand Op = genExpr(*E.operand());
      if (Op.isImm())
        return Operand::imm(~Op.getImm());
      return Operand::reg(emitToNewReg(Opcode::Not, {Op}));
    }
    case UnaryOp::LogicalNot: {
      Operand Op = genExpr(*E.operand());
      if (Op.isImm())
        return Operand::imm(Op.getImm() == 0 ? 1 : 0);
      return Operand::reg(
          emitToNewReg(Opcode::CmpEq, {Op, Operand::imm(0)}));
    }
    case UnaryOp::Deref: {
      Operand Ptr = genExpr(*E.operand());
      return Operand::reg(
          emitToNewReg(Opcode::Load, {Operand::reg(asReg(Ptr))}, E.loc()));
    }
    case UnaryOp::AddrOf: {
      const Expr &Inner = *E.operand();
      if (const auto *V = dyn_cast<VarRefExpr>(&Inner)) {
        VarStorage S = storageFor(V->decl());
        assert(S.StorageKind != VarStorage::Kind::Register &&
               "address of register-resident variable (Sema bug)");
        Operand Home = S.StorageKind == VarStorage::Kind::Global
                           ? Operand::global(S.Id)
                           : Operand::frame(S.Id);
        return Operand::reg(emitToNewReg(Opcode::Mov, {Home}));
      }
      if (const auto *I = dyn_cast<IndexExpr>(&Inner)) {
        Operand Addr = genElementAddress(*I);
        if (Addr.isReg() && Addr.getOffset() == 0)
          return Addr;
        if (Addr.isReg())
          return Operand::reg(emitToNewReg(
              Opcode::Add, {Operand::reg(Addr.getReg()),
                            Operand::imm(Addr.getOffset())}));
        return Operand::reg(emitToNewReg(Opcode::Mov, {Addr}));
      }
      // &*p is just p.
      const auto *U = cast<UnaryExpr>(&Inner);
      assert(U->op() == UnaryOp::Deref && "not an l-value");
      return genExpr(*U->operand());
    }
    }
    return Operand::imm(0);
  }

  static Opcode binaryOpcode(BinaryOp Op) {
    switch (Op) {
    case BinaryOp::Add:
      return Opcode::Add;
    case BinaryOp::Sub:
      return Opcode::Sub;
    case BinaryOp::Mul:
      return Opcode::Mul;
    case BinaryOp::Div:
      return Opcode::Div;
    case BinaryOp::Rem:
      return Opcode::Rem;
    case BinaryOp::And:
      return Opcode::And;
    case BinaryOp::Or:
      return Opcode::Or;
    case BinaryOp::Xor:
      return Opcode::Xor;
    case BinaryOp::Shl:
      return Opcode::Shl;
    case BinaryOp::Shr:
      return Opcode::Shr;
    case BinaryOp::Lt:
      return Opcode::CmpLt;
    case BinaryOp::Le:
      return Opcode::CmpLe;
    case BinaryOp::Gt:
      return Opcode::CmpGt;
    case BinaryOp::Ge:
      return Opcode::CmpGe;
    case BinaryOp::Eq:
      return Opcode::CmpEq;
    case BinaryOp::Ne:
      return Opcode::CmpNe;
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      break;
    }
    assert(false && "logical operators are lowered to control flow");
    return Opcode::Add;
  }

  Operand genBinary(const BinaryExpr &E) {
    if (E.op() == BinaryOp::LogicalAnd || E.op() == BinaryOp::LogicalOr) {
      // Materialize the short-circuit result as 0/1 through control flow.
      Reg Result = F.newReg();
      BasicBlock *TrueB = newBlock("sc.true");
      BasicBlock *FalseB = newBlock("sc.false");
      BasicBlock *DoneB = newBlock("sc.done");
      genCondition(E, TrueB, FalseB);
      setInsertPoint(TrueB);
      emit(Opcode::Mov, Result, {Operand::imm(1)});
      branchTo(DoneB);
      setInsertPoint(FalseB);
      emit(Opcode::Mov, Result, {Operand::imm(0)});
      branchTo(DoneB);
      setInsertPoint(DoneB);
      return Operand::reg(Result);
    }

    Operand L = genExpr(*E.lhs());
    Operand R = genExpr(*E.rhs());
    // Constant folding keeps the instruction mix close to what a real
    // 1989 optimizing compiler would emit.
    if (L.isImm() && R.isImm())
      if (auto Folded = foldConstant(E.op(), L.getImm(), R.getImm()))
        return Operand::imm(*Folded);
    return Operand::reg(emitToNewReg(binaryOpcode(E.op()), {L, R}));
  }

  static std::optional<int64_t> foldConstant(BinaryOp Op, int64_t L,
                                             int64_t R) {
    switch (Op) {
    case BinaryOp::Add:
      return L + R;
    case BinaryOp::Sub:
      return L - R;
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::Div:
      if (R == 0)
        return std::nullopt;
      return L / R;
    case BinaryOp::Rem:
      if (R == 0)
        return std::nullopt;
      return L % R;
    case BinaryOp::And:
      return L & R;
    case BinaryOp::Or:
      return L | R;
    case BinaryOp::Xor:
      return L ^ R;
    case BinaryOp::Shl:
      return L << (R & 63);
    case BinaryOp::Shr:
      return L >> (R & 63);
    case BinaryOp::Lt:
      return L < R;
    case BinaryOp::Le:
      return L <= R;
    case BinaryOp::Gt:
      return L > R;
    case BinaryOp::Ge:
      return L >= R;
    case BinaryOp::Eq:
      return L == R;
    case BinaryOp::Ne:
      return L != R;
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      break;
    }
    return std::nullopt;
  }

  Operand genCall(const CallExpr &E) {
    if (E.builtin() == BuiltinKind::Print) {
      Operand Arg = genExpr(*E.args()[0]);
      emit(Opcode::Print, NoReg, {Arg}, E.loc());
      return Operand::imm(0);
    }
    std::vector<Operand> Ops;
    Ops.push_back(Operand::func(FuncIds.at(E.callee())));
    for (const auto &A : E.args())
      Ops.push_back(genExpr(*A));
    bool HasResult = !E.callee()->returnType().isVoid();
    Reg Dst = HasResult ? F.newReg() : NoReg;
    emit(Opcode::Call, Dst, std::move(Ops), E.loc());
    return HasResult ? Operand::reg(Dst) : Operand::imm(0);
  }

  /// Emits control flow for `if (E) goto TrueB else goto FalseB`,
  /// handling &&, || and ! without materializing booleans.
  void genCondition(const Expr &E, BasicBlock *TrueB, BasicBlock *FalseB) {
    if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
      if (B->op() == BinaryOp::LogicalAnd) {
        BasicBlock *Mid = newBlock("and.rhs");
        genCondition(*B->lhs(), Mid, FalseB);
        setInsertPoint(Mid);
        genCondition(*B->rhs(), TrueB, FalseB);
        return;
      }
      if (B->op() == BinaryOp::LogicalOr) {
        BasicBlock *Mid = newBlock("or.rhs");
        genCondition(*B->lhs(), TrueB, Mid);
        setInsertPoint(Mid);
        genCondition(*B->rhs(), TrueB, FalseB);
        return;
      }
    }
    if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
      if (U->op() == UnaryOp::LogicalNot) {
        genCondition(*U->operand(), FalseB, TrueB);
        return;
      }
    }
    Operand Cond = genExpr(E);
    if (Cond.isImm()) {
      branchTo(Cond.getImm() != 0 ? TrueB : FalseB);
      return;
    }
    emit(Opcode::CondBr, NoReg,
         {Operand::reg(asReg(Cond)), Operand::block(TrueB->id()),
          Operand::block(FalseB->id())});
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  void genStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      for (const auto &Child : cast<BlockStmt>(&S)->stmts())
        genStmt(*Child);
      return;
    case Stmt::Kind::Decl: {
      VarDecl *D = cast<DeclStmt>(&S)->decl();
      VarStorage Home = storageFor(D);
      if (D->init()) {
        Operand Value = genExpr(*D->init());
        storeTo(Home, Value, S.loc());
      } else if (Home.StorageKind == VarStorage::Kind::Register) {
        // Zero-initialize register-resident scalars (see header note).
        emit(Opcode::Mov, Home.Id, {Operand::imm(0)});
      }
      return;
    }
    case Stmt::Kind::Expr:
      genExpr(*cast<ExprStmt>(&S)->expr());
      return;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      LValue Target = genLValue(*A->lhs());
      Operand Value = genExpr(*A->rhs());
      if (Target.IsRegister) {
        emit(Opcode::Mov, Target.Home, {Value}, S.loc());
      } else {
        emit(Opcode::Store, NoReg, {Value, Target.Address}, S.loc());
      }
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      BasicBlock *ThenB = newBlock("if.then");
      BasicBlock *DoneB = newBlock("if.done");
      BasicBlock *ElseB = I->elseStmt() ? newBlock("if.else") : DoneB;
      genCondition(*I->cond(), ThenB, ElseB);
      setInsertPoint(ThenB);
      genStmt(*I->thenStmt());
      branchTo(DoneB);
      if (I->elseStmt()) {
        setInsertPoint(ElseB);
        genStmt(*I->elseStmt());
        branchTo(DoneB);
      }
      setInsertPoint(DoneB);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&S);
      BasicBlock *CondB = newBlock("while.cond");
      BasicBlock *BodyB = newBlock("while.body");
      BasicBlock *DoneB = newBlock("while.done");
      branchTo(CondB);
      setInsertPoint(CondB);
      genCondition(*W->cond(), BodyB, DoneB);
      LoopStack.push_back({CondB, DoneB});
      setInsertPoint(BodyB);
      genStmt(*W->body());
      branchTo(CondB);
      LoopStack.pop_back();
      setInsertPoint(DoneB);
      return;
    }
    case Stmt::Kind::DoWhile: {
      const auto *W = cast<DoWhileStmt>(&S);
      BasicBlock *BodyB = newBlock("do.body");
      BasicBlock *CondB = newBlock("do.cond");
      BasicBlock *DoneB = newBlock("do.done");
      branchTo(BodyB);
      LoopStack.push_back({CondB, DoneB});
      setInsertPoint(BodyB);
      genStmt(*W->body());
      branchTo(CondB);
      LoopStack.pop_back();
      setInsertPoint(CondB);
      genCondition(*W->cond(), BodyB, DoneB);
      setInsertPoint(DoneB);
      return;
    }
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(&S);
      if (FS->init())
        genStmt(*FS->init());
      BasicBlock *CondB = newBlock("for.cond");
      BasicBlock *BodyB = newBlock("for.body");
      BasicBlock *StepB = newBlock("for.step");
      BasicBlock *DoneB = newBlock("for.done");
      branchTo(CondB);
      setInsertPoint(CondB);
      if (FS->cond())
        genCondition(*FS->cond(), BodyB, DoneB);
      else
        branchTo(BodyB);
      LoopStack.push_back({StepB, DoneB});
      setInsertPoint(BodyB);
      genStmt(*FS->body());
      branchTo(StepB);
      LoopStack.pop_back();
      setInsertPoint(StepB);
      if (FS->step())
        genStmt(*FS->step());
      branchTo(CondB);
      setInsertPoint(DoneB);
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(&S);
      if (R->value()) {
        Operand Value = genExpr(*R->value());
        emit(Opcode::Ret, NoReg, {Value}, S.loc());
      } else {
        emit(Opcode::Ret, NoReg, {}, S.loc());
      }
      return;
    }
    case Stmt::Kind::Break:
      assert(!LoopStack.empty() && "break outside loop (Sema bug)");
      branchTo(LoopStack.back().BreakTarget);
      return;
    case Stmt::Kind::Continue:
      assert(!LoopStack.empty() && "continue outside loop (Sema bug)");
      branchTo(LoopStack.back().ContinueTarget);
      return;
    }
  }

  void storeTo(VarStorage Home, const Operand &Value, SourceLoc Loc) {
    switch (Home.StorageKind) {
    case VarStorage::Kind::Register:
      emit(Opcode::Mov, Home.Id, {Value}, Loc);
      return;
    case VarStorage::Kind::Frame:
      emit(Opcode::Store, NoReg, {Value, Operand::frame(Home.Id)}, Loc);
      return;
    case VarStorage::Kind::Global:
      emit(Opcode::Store, NoReg, {Value, Operand::global(Home.Id)}, Loc);
      return;
    }
  }

  struct LoopTargets {
    BasicBlock *ContinueTarget;
    BasicBlock *BreakTarget;
  };

  [[maybe_unused]] const TranslationUnit &TU;
  IRModule &M;
  IRFunction &F;
  const FunctionDecl &Decl;
  const std::unordered_map<const VarDecl *, uint32_t> &GlobalIds;
  const std::unordered_map<const FunctionDecl *, uint32_t> &FuncIds;
  const IRGenOptions &Options;
  BasicBlock *Cur = nullptr;
  std::unordered_map<const VarDecl *, VarStorage> Storage;
  std::vector<LoopTargets> LoopStack;
  unsigned NextBlockSuffix = 0;
};

} // namespace

std::unique_ptr<IRModule> urcm::generateIR(const TranslationUnit &TU,
                                           DiagnosticEngine &Diags,
                                           const IRGenOptions &Options) {
  auto M = std::make_unique<IRModule>();

  std::unordered_map<const VarDecl *, uint32_t> GlobalIds;
  for (const auto &G : TU.globals())
    GlobalIds[G.get()] = M->addGlobal(
        IRGlobal{G->name(), G->type().sizeInWords(), G.get(), 0});

  // Create all functions first so calls (including mutual recursion via
  // textual order) can reference ids.
  std::unordered_map<const FunctionDecl *, uint32_t> FuncIds;
  for (const auto &FD : TU.functions()) {
    IRFunction *F = M->addFunction(
        FD->name(), !FD->returnType().isVoid(),
        static_cast<uint32_t>(FD->params().size()));
    F->setOrigin(FD.get());
    FuncIds[FD.get()] = F->id();
  }

  for (const auto &FD : TU.functions()) {
    if (!FD->body()) {
      Diags.error(FD->loc(), formatString("function '%s' has no body",
                                          FD->name().c_str()));
      continue;
    }
    IRFunction *F = M->function(FuncIds[FD.get()]);
    FunctionIRGen Gen(TU, *M, *F, *FD, GlobalIds, FuncIds, Options);
    Gen.run();
  }
  if (Diags.hasErrors())
    return nullptr;
  return M;
}

CompiledModule urcm::compileToIR(const std::string &Source,
                                 DiagnosticEngine &Diags,
                                 const IRGenOptions &Options) {
  CompiledModule Result;
  Result.TU = parseAndAnalyze(Source, Diags);
  if (!Result.TU)
    return CompiledModule();
  Result.IR = generateIR(*Result.TU, Diags, Options);
  if (!Result.IR)
    return CompiledModule();
  return Result;
}
