//===- urcm_report.cpp - One-command reproduction report -----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Runs the core experiment grid and emits a self-contained markdown
// report (stdout, or a file given as argv[1]) with the paper-vs-measured
// tables: Figure 5, the static/dynamic ambiguity bands, the scheme
// decomposition and the memory-access-time speedups. Useful to verify a
// build reproduces the paper's shapes in one command:
//
//   ./build/tools/urcm_report report.md
//
// Flags: --help, --version, --telemetry (summary on stderr),
// --telemetry-json=FILE, --trace-out=FILE (Chrome trace-event JSON of
// the whole grid, compile and simulate phases across the pool),
// --profile-refs=DIR (one attribution profile JSON per workload),
// --metrics-out=FILE (JSONL telemetry time series).
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/sim/RefProfile.h"
#include "urcm/sim/ShardedReplay.h"
#include "urcm/sim/SweepEngine.h"
#include "urcm/sim/TraceStore.h"
#include "urcm/support/Telemetry.h"
#include "urcm/support/ThreadPool.h"
#include "urcm/workloads/Workloads.h"

#include <memory>

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace urcm;

namespace {

FILE *Out = stdout;

void line(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));
void line(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(Out, Fmt, Args);
  va_end(Args);
  std::fputc('\n', Out);
}

CacheConfig paperCache() {
  CacheConfig C;
  C.NumLines = 128;
  C.Assoc = 2;
  C.LineWords = 1;
  return C;
}

/// The replacement-policy comparison grid: every policy replays the
/// same recorded trace (hinted and hint-stripped) at the paper's cache
/// geometry. LRU leads so its column doubles as the Figure-5 numbers;
/// the tail pairs the liveness-bypass predictor against SRRIP, the
/// paper-adjacent hardware-only alternatives to compiler hints.
const CachePolicy ReportPolicies[] = {
    CachePolicy::LRU,      CachePolicy::FIFO,
    CachePolicy::Random,   CachePolicy::TreePLRU,
    CachePolicy::SRRIP,    CachePolicy::LivenessBypass,
};
constexpr size_t NumReportPolicies =
    sizeof(ReportPolicies) / sizeof(ReportPolicies[0]);

/// Everything the report needs for one workload. Computed once per
/// workload up front (in parallel) so the tables below are lookups;
/// fig5 in particular feeds two tables.
struct WorkloadData {
  SchemeComparison Fig5;
  SimResult EraBaseline;
  SimResult CompleteUnified;
  /// Per-policy counters of the hinted / hint-stripped Figure-5 replay,
  /// parallel to ReportPolicies ([0] == the LRU Figure-5 points).
  std::vector<CacheStats> PolicyHinted, PolicyStripped;
};

/// The per-workload compiled programs. Compilation is hoisted out of
/// the engine's producer closures so the trace-store content hash is
/// known *before* the experiments run — with a warm store the producers
/// (and the Simulator inside them) are never invoked, but compilation
/// still happens: it is cheap, and StaticStats feeds the static table
/// regardless of how the dynamic counters are served.
struct Prepared {
  std::shared_ptr<MachineProgram> Fig5Unified;
  std::shared_ptr<MachineProgram> EraBaseline;
  std::shared_ptr<MachineProgram> CompleteUnified;
};

MachineProgram compileOrDie(const Workload &W,
                            const CompileOptions &Options,
                            ClassificationStats *Static = nullptr) {
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(W.Source, Options, Diags);
  if (!R.Ok) {
    std::fprintf(stderr, "%s: compilation failed\n%s\n", W.Name.c_str(),
                 Diags.str().c_str());
    std::exit(1);
  }
  if (Static)
    *Static = R.Static;
  return std::move(R.Program);
}

/// Compiles every program the report simulates (in parallel across
/// workloads). The Figure-5 soundness precondition is checked here:
/// both schemes' instruction streams must be identical modulo hint
/// bits, or hint-stripped replay would print numbers that mean
/// something else — abort rather than do that.
std::vector<Prepared> compileAll(std::vector<WorkloadData> &Data) {
  const std::vector<Workload> &Workloads = paperWorkloads();
  std::vector<Prepared> Programs(Workloads.size());
  ThreadPool::global().parallelFor(Workloads.size(), [&](size_t I) {
    const Workload &W = Workloads[I];
    CompileOptions Era;
    Era.IRGen.ScalarLocalsInMemory = true;
    CompileOptions Unified = Era;
    Unified.Scheme = UnifiedOptions::unified();
    CompileOptions Conventional = Era;
    Conventional.Scheme = UnifiedOptions::conventional();
    MachineProgram U =
        compileOrDie(W, Unified, &Data[I].Fig5.StaticStats);
    MachineProgram C = compileOrDie(W, Conventional);
    if (!sameStreamModuloHints(U, C)) {
      std::fprintf(stderr,
                   "%s: scheme instruction streams diverge; "
                   "hint-stripped replay would be unsound\n",
                   W.Name.c_str());
      std::exit(1);
    }
    Programs[I].Fig5Unified =
        std::make_shared<MachineProgram>(std::move(U));

    CompileOptions Baseline = Era;
    Baseline.Scheme = UnifiedOptions::conventional();
    Programs[I].EraBaseline =
        std::make_shared<MachineProgram>(compileOrDie(W, Baseline));

    CompileOptions Complete;
    Complete.PromoteLoopScalars = true;
    Complete.Scheme = UnifiedOptions::reuseAware();
    Programs[I].CompleteUnified =
        std::make_shared<MachineProgram>(compileOrDie(W, Complete));
  });
  return Programs;
}

/// --no-fuse: run every simulation with superinstruction fusion off.
/// The report is byte-identical either way (fusion is
/// trace-transparent); the flag exists as the A/B baseline for that
/// claim (scripts/check.sh --fuse diffs the two outputs).
bool NoFuse = false;

/// Schedules one plain run (no sweep points — the experiment exists for
/// its base counters, and for the store: warm runs serve it from the
/// recorded summary without simulating).
void scheduleRun(SweepEngine &Engine, const std::string &Key,
                 const std::string &HintGroup,
                 std::shared_ptr<MachineProgram> Prog) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  Sim.Fusion = !NoFuse;
  uint64_t Hash = Engine.traceStoreDir().empty()
                      ? 0
                      : traceContentHash(*Prog, Sim);
  Engine.schedule(Key, HintGroup, Sim, {},
                  [Prog = std::move(Prog)](const SimConfig &Config) {
                    Simulator S(Config);
                    return S.run(*Prog);
                  },
                  Hash);
}

const SimResult &baseOrDie(SweepEngine &Engine, const Workload &W,
                           const std::string &Key) {
  const SimResult &Base = Engine.base(Key);
  if (!Base.ok()) {
    std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), Base.Error.c_str());
    std::exit(1);
  }
  if (Base.CoherenceViolations != 0) {
    std::fprintf(stderr, "%s: coherence violations detected\n",
                 W.Name.c_str());
    std::exit(1);
  }
  return Base;
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream File(Path, std::ios::binary);
  File << Contents;
  File.flush();
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  return true;
}

/// Runs the whole grid on one engine: the Figure-5 pair-replays (each
/// workload compiled under both schemes, ONE traced unified run serving
/// both sides — the unified counters replay the trace as recorded, the
/// conventional counters replay it with the hints stripped) plus the
/// era-baseline and complete-unified system runs. Counters are
/// bit-identical to running each scheme live (tests/sweepengine_test),
/// \p Shards spreads each replay across the pool without changing a
/// single bit (tests/shardedreplay_test), and \p StoreDir serves every
/// experiment from persisted traces when warm (byte-identical output,
/// asserted by scripts/check.sh --store).
///
/// When \p ProfileDir is nonempty, the hinted Figure-5 replay point of
/// every workload additionally accumulates per-reference attribution,
/// and one profile JSON per workload (docs/profile_schema.json) lands
/// at `<ProfileDir>/<workload>.json` — served by the same replay that
/// produces the tables, at any shard count, cold or warm.
std::vector<WorkloadData> computeAll(uint32_t Shards,
                                     const std::string &StoreDir,
                                     const std::string &ProfileDir) {
  const std::vector<Workload> &Workloads = paperWorkloads();
  std::vector<WorkloadData> Data(Workloads.size());
  std::vector<Prepared> Programs = compileAll(Data);

  SweepEngine Engine;
  Engine.setShards(Shards);
  DiagnosticEngine StoreDiags;
  if (!StoreDir.empty())
    Engine.setTraceStore(StoreDir, &StoreDiags);

  for (size_t I = 0; I != Workloads.size(); ++I) {
    const Workload &W = Workloads[I];
    std::vector<SweepPoint> Points(2 * NumReportPolicies);
    for (size_t P = 0; P != NumReportPolicies; ++P) {
      SweepPoint &Hinted = Points[2 * P];
      SweepPoint &Stripped = Points[2 * P + 1];
      Hinted.Config = Stripped.Config = paperCache();
      Hinted.Config.Policy = Stripped.Config.Policy = ReportPolicies[P];
      Hinted.Policy = Stripped.Policy = ReportPolicies[P];
      Stripped.IgnoreHints = true;
    }
    if (!ProfileDir.empty())
      Points[0].AttributionRefs = static_cast<uint32_t>(
          Programs[I].Fig5Unified->RefTable.size());
    SimConfig Base;
    Base.Cache = paperCache();
    Base.Fusion = !NoFuse;
    std::shared_ptr<MachineProgram> Prog = Programs[I].Fig5Unified;
    uint64_t Hash = StoreDir.empty() ? 0 : traceContentHash(*Prog, Base);
    Engine.schedule(W.Name, W.Name, Base, std::move(Points),
                    [Prog](const SimConfig &Sim) {
                      Simulator S(Sim);
                      return S.run(*Prog);
                    },
                    Hash);
    scheduleRun(Engine, W.Name + "/era-baseline", W.Name,
                Programs[I].EraBaseline);
    scheduleRun(Engine, W.Name + "/complete-unified", W.Name,
                Programs[I].CompleteUnified);
  }
  Engine.run();
  // Store problems fall back to live simulation; surface them without
  // failing the report.
  if (!StoreDiags.diagnostics().empty())
    std::fprintf(stderr, "%s", StoreDiags.str().c_str());

  for (size_t I = 0; I != Workloads.size(); ++I) {
    const Workload &W = Workloads[I];
    SchemeComparison &C = Data[I].Fig5;
    const SimResult &Base = baseOrDie(Engine, W, W.Name);
    C.Unified = Base;
    C.Unified.Cache = Engine.point(W.Name, 0);
    C.Conventional = Base;
    C.Conventional.Cache = Engine.point(W.Name, 1);
    // A hint-free run of the same stream reports no hint activity.
    C.Conventional.Refs.Bypassed = 0;
    C.Conventional.Refs.LastRefTagged = 0;
    C.Conventional.BypassTransitions = 0;
    Data[I].PolicyHinted.resize(NumReportPolicies);
    Data[I].PolicyStripped.resize(NumReportPolicies);
    for (size_t P = 0; P != NumReportPolicies; ++P) {
      Data[I].PolicyHinted[P] = Engine.point(W.Name, 2 * P);
      Data[I].PolicyStripped[P] = Engine.point(W.Name, 2 * P + 1);
    }
    Data[I].EraBaseline =
        baseOrDie(Engine, W, W.Name + "/era-baseline");
    Data[I].CompleteUnified =
        baseOrDie(Engine, W, W.Name + "/complete-unified");
  }

  if (!ProfileDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(ProfileDir, EC);
    for (size_t I = 0; I != Workloads.size(); ++I) {
      const Workload &W = Workloads[I];
      const RefAttribution &Attr = Engine.attribution(W.Name, 0);
      if (!writeFile(ProfileDir + "/" + W.Name + ".json",
                     refProfileJSON(*Programs[I].Fig5Unified, Attr,
                                    W.Name)))
        std::exit(1);
    }
  }
  return Data;
}

void usage(std::FILE *To) {
  std::fprintf(To,
               "usage: urcm_report [output.md] [--telemetry] "
               "[--telemetry-json=FILE] [--trace-out=FILE]\n"
               "                   [--shards=N|auto] "
               "[--trace-store=DIR]\n"
               "       urcm_report --help | --version\n"
               "  --shards=N|auto    replay each workload's trace with "
               "N-way set sharding\n"
               "                     (auto = thread-pool width; output "
               "is bit-identical\n"
               "                     for every value; default 1)\n"
               "  --trace-store=DIR  persist recorded traces under DIR "
               "and serve repeat\n"
               "                     runs from them (skips "
               "re-simulation; output is\n"
               "                     byte-identical cold or warm)\n"
               "  --profile-refs=DIR write one per-reference "
               "attribution profile JSON\n"
               "                     per workload "
               "(DIR/<workload>.json), accumulated by\n"
               "                     the hinted Figure-5 replay\n"
               "  --no-fuse          disable superinstruction fusion "
               "in the simulator\n"
               "                     (A/B baseline; the report is "
               "byte-identical\n"
               "                     either way)\n"
               "  --metrics-out=F    sample telemetry into a JSONL "
               "time series at F\n"
               "  --metrics-interval-ms=N  sampling period (default "
               "200)\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string OutputFile, TraceOut, TelemetryJson, TraceStoreDir;
  std::string ProfileDir, MetricsOut;
  bool TelemetrySummary = false;
  uint32_t Shards = 1;
  uint32_t MetricsIntervalMs = 200;
  for (int A = 1; A != argc; ++A) {
    std::string Arg = argv[A];
    if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("urcm_report (urcm) 0.4\n");
      return 0;
    }
    if (Arg == "--telemetry") {
      TelemetrySummary = true;
    } else if (Arg == "--no-fuse") {
      NoFuse = true;
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      TraceOut = Arg.substr(12);
    } else if (Arg.rfind("--telemetry-json=", 0) == 0) {
      TelemetryJson = Arg.substr(17);
    } else if (Arg.rfind("--profile-refs=", 0) == 0) {
      ProfileDir = Arg.substr(15);
      if (ProfileDir.empty()) {
        std::fprintf(stderr,
                     "error: --profile-refs expects a directory\n");
        return 2;
      }
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      MetricsOut = Arg.substr(14);
      if (MetricsOut.empty()) {
        std::fprintf(stderr, "error: --metrics-out expects a file\n");
        return 2;
      }
    } else if (Arg.rfind("--metrics-interval-ms=", 0) == 0) {
      std::string Value = Arg.substr(22);
      char *End = nullptr;
      unsigned long Parsed = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || *End != '\0' || Parsed == 0 ||
          Parsed > 60000) {
        std::fprintf(stderr,
                     "error: --metrics-interval-ms expects 1..60000, "
                     "got '%s'\n",
                     Value.c_str());
        return 2;
      }
      MetricsIntervalMs = static_cast<uint32_t>(Parsed);
    } else if (Arg.rfind("--trace-store=", 0) == 0) {
      TraceStoreDir = Arg.substr(14);
      if (TraceStoreDir.empty()) {
        std::fprintf(stderr,
                     "error: --trace-store expects a directory\n");
        return 2;
      }
    } else if (Arg.rfind("--shards=", 0) == 0) {
      std::string Value = Arg.substr(9);
      if (Value == "auto") {
        Shards = 0; // Resolved to the pool width by the engine.
      } else {
        char *End = nullptr;
        unsigned long Parsed = std::strtoul(Value.c_str(), &End, 10);
        if (Value.empty() || *End != '\0' || Parsed == 0 ||
            Parsed > 1u << 20) {
          std::fprintf(stderr,
                       "error: --shards expects a positive count or "
                       "'auto', got '%s'\n",
                       Value.c_str());
          return 2;
        }
        Shards = static_cast<uint32_t>(Parsed);
      }
    } else if (Arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      usage(stderr);
      return 2;
    } else if (OutputFile.empty()) {
      OutputFile = Arg;
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n",
                   Arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (TelemetrySummary || !TraceOut.empty() || !TelemetryJson.empty() ||
      !MetricsOut.empty()) {
    telemetry::setEnabled(true);
    telemetry::setThreadName("main");
  }
  std::unique_ptr<telemetry::MetricsSampler> Sampler;
  if (!MetricsOut.empty())
    Sampler = std::make_unique<telemetry::MetricsSampler>(
        MetricsOut, MetricsIntervalMs);

  if (!OutputFile.empty()) {
    Out = std::fopen(OutputFile.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s\n", OutputFile.c_str());
      return 1;
    }
  }

  std::vector<WorkloadData> Data =
      computeAll(Shards, TraceStoreDir, ProfileDir);

  line("# URCM reproduction report");
  line("");
  line("Chi & Dietz, *Unified Management of Registers and Cache Using "
       "Liveness and Cache Bypass*, PLDI 1989.");
  line("Configuration: era compiler, 128-line 2-way LRU data cache, "
       "1-word lines.");
  line("");

  line("## Figure 5 — data-cache traffic reduction (paper: ~60%% mean)");
  line("");
  line("| bench | conventional | unified | reduction | dynamic "
       "unambiguous |");
  line("|---|---|---|---|---|");
  double Sum = 0;
  for (size_t I = 0; I != paperWorkloads().size(); ++I) {
    const Workload &W = paperWorkloads()[I];
    const SchemeComparison &C = Data[I].Fig5;
    Sum += C.cacheTrafficReductionPercent();
    line("| %s | %llu | %llu | %.1f%% | %.1f%% |", W.Name.c_str(),
         static_cast<unsigned long long>(
             C.Conventional.Cache.cacheTraffic()),
         static_cast<unsigned long long>(C.Unified.Cache.cacheTraffic()),
         C.cacheTrafficReductionPercent(),
         C.dynamicUnambiguousPercent());
  }
  line("| **mean** | | | **%.1f%%** | |",
       Sum / paperWorkloads().size());
  line("");

  line("## Static classification (paper: 70-80%% unambiguous)");
  line("");
  line("| bench | static unambiguous | refs |");
  line("|---|---|---|");
  for (size_t I = 0; I != paperWorkloads().size(); ++I) {
    const Workload &W = paperWorkloads()[I];
    const SchemeComparison &C = Data[I].Fig5;
    line("| %s | %.1f%% | %llu |", W.Name.c_str(),
         C.StaticStats.unambiguousFraction() * 100.0,
         static_cast<unsigned long long>(C.StaticStats.totalRefs()));
  }
  line("");

  line("## Memory-access time (mem word = 10 cycles; paper section 4.4 "
       "claims \"factors of 2 or more\")");
  line("");
  line("| bench | era baseline (cycles) | complete unified (cycles) | "
       "speedup |");
  line("|---|---|---|---|");
  LatencyModel Model;
  double Product = 1.0;
  for (size_t I = 0; I != paperWorkloads().size(); ++I) {
    const Workload &W = paperWorkloads()[I];
    uint64_t BaseCycles =
        memoryAccessCycles(Data[I].EraBaseline.Cache, Model);
    uint64_t UniCycles =
        memoryAccessCycles(Data[I].CompleteUnified.Cache, Model);
    double Speedup = static_cast<double>(BaseCycles) /
                     static_cast<double>(UniCycles);
    Product *= Speedup;
    line("| %s | %llu | %llu | %.2fx |", W.Name.c_str(),
         static_cast<unsigned long long>(BaseCycles),
         static_cast<unsigned long long>(UniCycles), Speedup);
  }
  line("| **geomean** | | | **%.2fx** |",
       std::pow(Product, 1.0 / paperWorkloads().size()));
  line("");

  line("## Replacement-policy grid — unified cache-traffic reduction");
  line("");
  line("Every column replays the same recorded trace under a different "
       "replacement policy (128-line 2-way cache); cells are the "
       "hinted-vs-stripped cache-traffic reduction, i.e. what the "
       "compiler's hints still buy on top of that policy. "
       "LivenessBypass is the hardware predictor that learns "
       "dead-on-arrival references at runtime — the closest "
       "hardware-only stand-in for the paper's compiler hints.");
  line("");
  {
    std::string Header = "| bench |", Rule = "|---|";
    for (size_t P = 0; P != NumReportPolicies; ++P) {
      Header += " ";
      Header += cachePolicyName(ReportPolicies[P]);
      Header += " |";
      Rule += "---|";
    }
    line("%s", Header.c_str());
    line("%s", Rule.c_str());
  }
  for (size_t I = 0; I != paperWorkloads().size(); ++I) {
    std::string Row = "| " + paperWorkloads()[I].Name + " |";
    for (size_t P = 0; P != NumReportPolicies; ++P) {
      double Conv = static_cast<double>(
          Data[I].PolicyStripped[P].cacheTraffic());
      double Uni = static_cast<double>(
          Data[I].PolicyHinted[P].cacheTraffic());
      char Cell[32];
      std::snprintf(Cell, sizeof(Cell), " %.1f%% |",
                    Conv > 0 ? (Conv - Uni) / Conv * 100.0 : 0.0);
      Row += Cell;
    }
    line("%s", Row.c_str());
  }
  line("");

  line("## Bypass vs RRIP — hint-free bus traffic by policy");
  line("");
  line("The hint-stripped replay isolates what the replacement policy "
       "achieves on its own: compare SRRIP's re-reference intervals "
       "against the LivenessBypass predictor (and both against plain "
       "LRU) with no compiler involvement.");
  line("");
  {
    std::string Header = "| bench |", Rule = "|---|";
    for (size_t P = 0; P != NumReportPolicies; ++P) {
      Header += " ";
      Header += cachePolicyName(ReportPolicies[P]);
      Header += " |";
      Rule += "---|";
    }
    line("%s", Header.c_str());
    line("%s", Rule.c_str());
  }
  for (size_t I = 0; I != paperWorkloads().size(); ++I) {
    std::string Row = "| " + paperWorkloads()[I].Name + " |";
    for (size_t P = 0; P != NumReportPolicies; ++P) {
      char Cell[32];
      std::snprintf(Cell, sizeof(Cell), " %llu |",
                    static_cast<unsigned long long>(
                        Data[I].PolicyStripped[P].busTraffic()));
      Row += Cell;
    }
    line("%s", Row.c_str());
  }
  line("");

  line("## Sanity");
  line("");
  line("All schemes produced identical program outputs with zero "
       "coherence violations (checked per run above).");
  if (Out != stdout)
    std::fclose(Out);

  if (Sampler)
    Sampler->stop(); // Flush the final sample before the exporters run.
  int Code = 0;
  if (TelemetrySummary)
    std::fprintf(stderr, "%s", telemetry::summaryText().c_str());
  if (!TelemetryJson.empty() &&
      !writeFile(TelemetryJson, telemetry::snapshotJSON()))
    Code = 1;
  if (!TraceOut.empty() &&
      !writeFile(TraceOut, telemetry::chromeTraceJSON()))
    Code = 1;
  return Code;
}
