//===- urcmc.cpp - URCM command-line compiler driver ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Compile, inspect and simulate MC programs from the shell:
//
//   urcmc prog.mc                      compile + run (unified scheme)
//   urcmc --workload=Queen --compare   run a built-in benchmark under
//                                      both schemes and report traffic
//   urcmc prog.mc --dump-ir            print the IR after allocation
//   urcmc prog.mc --dump-asm           print annotated URCM-RISC code
//   urcmc prog.mc --scheme=deadtag --era --cache-lines=64 --assoc=4
//
// Flags:
//   --era                 scalar locals in memory (Figure-5 codegen)
//   --cleanup             run copy-prop/LVN/DCE (+ --dse for dead stores)
//   --promote             loop promotion of unaliased scalars
//   --O1                  --promote + --cleanup
//   --scheme=S            conventional | bypass | deadtag | unified |
//                         reuse   (default unified)
//   --regs=N              allocatable registers (default 24)
//   --alloc=P             chaitin | usage  (default chaitin)
//   --cache-lines=N --assoc=N --line-words=N --policy=lru|fifo|random
//   --icache              model the instruction cache too
//   --dump-ast --dump-ir --dump-asm --stats --compare
//   --workload=NAME       use a built-in benchmark instead of a file
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/ir/IRParser.h"
#include "urcm/ir/Interpreter.h"
#include "urcm/ir/Verifier.h"
#include "urcm/lang/Sema.h"
#include "urcm/workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace urcm;

namespace {

struct CliOptions {
  std::string InputFile;
  std::string WorkloadName;
  CompileOptions Compile;
  SimConfig Sim;
  bool DumpAST = false;
  bool DumpIR = false;
  bool DumpAsm = false;
  bool Stats = false;
  bool Compare = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: urcmc <file.mc> [flags] | urcmc --workload=NAME "
               "[flags]\nsee the header of tools/urcmc.cpp for the flag "
               "list\n");
}

bool parseFlag(CliOptions &Cli, const std::string &Arg) {
  auto Value = [&](const char *Prefix) -> const char * {
    size_t Len = std::strlen(Prefix);
    if (Arg.compare(0, Len, Prefix) == 0)
      return Arg.c_str() + Len;
    return nullptr;
  };

  if (Arg == "--era") {
    Cli.Compile.IRGen.ScalarLocalsInMemory = true;
    return true;
  }
  if (Arg == "--cleanup") {
    Cli.Compile.RunCleanup = true;
    return true;
  }
  if (Arg == "--dse") {
    Cli.Compile.RunCleanup = true;
    Cli.Compile.Transforms.DeadStoreElimination = true;
    return true;
  }
  if (Arg == "--promote") {
    Cli.Compile.PromoteLoopScalars = true;
    return true;
  }
  if (Arg == "--O1") {
    // The full optimizing pipeline: promotion + copy-prop + LVN + DCE.
    Cli.Compile.PromoteLoopScalars = true;
    Cli.Compile.RunCleanup = true;
    return true;
  }
  if (Arg == "--dump-ast") {
    Cli.DumpAST = true;
    return true;
  }
  if (Arg == "--dump-ir") {
    Cli.DumpIR = true;
    return true;
  }
  if (Arg == "--dump-asm") {
    Cli.DumpAsm = true;
    return true;
  }
  if (Arg == "--stats") {
    Cli.Stats = true;
    return true;
  }
  if (Arg == "--compare") {
    Cli.Compare = true;
    return true;
  }
  if (Arg == "--icache") {
    Cli.Sim.ModelICache = true;
    return true;
  }
  if (const char *V = Value("--scheme=")) {
    std::string S = V;
    if (S == "conventional")
      Cli.Compile.Scheme = UnifiedOptions::conventional();
    else if (S == "bypass")
      Cli.Compile.Scheme = UnifiedOptions::bypassOnly();
    else if (S == "deadtag")
      Cli.Compile.Scheme = UnifiedOptions::deadTagOnly();
    else if (S == "unified")
      Cli.Compile.Scheme = UnifiedOptions::unified();
    else if (S == "reuse")
      Cli.Compile.Scheme = UnifiedOptions::reuseAware();
    else
      return false;
    return true;
  }
  if (const char *V = Value("--regs=")) {
    Cli.Compile.RegAlloc.NumColors = std::atoi(V);
    return Cli.Compile.RegAlloc.NumColors >= 8;
  }
  if (const char *V = Value("--alloc=")) {
    std::string S = V;
    if (S == "chaitin")
      Cli.Compile.RegAlloc.Policy = RegAllocPolicy::ChaitinBriggs;
    else if (S == "usage")
      Cli.Compile.RegAlloc.Policy = RegAllocPolicy::UsageCount;
    else
      return false;
    return true;
  }
  if (const char *V = Value("--cache-lines=")) {
    Cli.Sim.Cache.NumLines = std::atoi(V);
    return Cli.Sim.Cache.NumLines > 0;
  }
  if (const char *V = Value("--assoc=")) {
    Cli.Sim.Cache.Assoc = std::atoi(V);
    return Cli.Sim.Cache.Assoc > 0;
  }
  if (const char *V = Value("--line-words=")) {
    Cli.Sim.Cache.LineWords = std::atoi(V);
    return Cli.Sim.Cache.LineWords > 0;
  }
  if (const char *V = Value("--policy=")) {
    std::string S = V;
    if (S == "lru")
      Cli.Sim.Cache.Policy = ReplacementPolicy::LRU;
    else if (S == "fifo")
      Cli.Sim.Cache.Policy = ReplacementPolicy::FIFO;
    else if (S == "random")
      Cli.Sim.Cache.Policy = ReplacementPolicy::Random;
    else
      return false;
    return true;
  }
  if (const char *V = Value("--workload=")) {
    Cli.WorkloadName = V;
    return true;
  }
  return false;
}

void printRunReport(const SimResult &R, bool Stats) {
  std::printf("output:");
  for (int64_t V : R.Output)
    std::printf(" %lld", static_cast<long long>(V));
  std::printf("\n");
  if (!Stats)
    return;
  std::printf("steps: %llu\n",
              static_cast<unsigned long long>(R.Steps));
  std::printf("data refs: %llu (unambiguous %.1f%%, bypassed %llu, "
              "dead-tagged %llu)\n",
              static_cast<unsigned long long>(R.Refs.total()),
              R.Refs.unambiguousFraction() * 100.0,
              static_cast<unsigned long long>(R.Refs.Bypassed),
              static_cast<unsigned long long>(R.Refs.LastRefTagged));
  std::printf("cache: %s\n", R.Cache.str().c_str());
  if (R.InstructionFetches != 0)
    std::printf("icache: fetches=%llu hit=%.2f%%\n",
                static_cast<unsigned long long>(R.InstructionFetches),
                R.ICache.hitRate() * 100.0);
  if (R.CoherenceViolations != 0)
    std::printf("WARNING: %llu coherence violations (unsound hints)\n",
                static_cast<unsigned long long>(R.CoherenceViolations));
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Cli;
  for (int A = 1; A != argc; ++A) {
    std::string Arg = argv[A];
    if (Arg.rfind("--", 0) == 0) {
      if (!parseFlag(Cli, Arg)) {
        std::fprintf(stderr, "error: unknown or invalid flag '%s'\n",
                     Arg.c_str());
        usage();
        return 2;
      }
    } else if (Cli.InputFile.empty()) {
      Cli.InputFile = Arg;
    } else {
      usage();
      return 2;
    }
  }

  std::string Source;
  if (!Cli.WorkloadName.empty()) {
    const Workload *W = findWorkload(Cli.WorkloadName);
    if (!W) {
      std::fprintf(stderr, "error: unknown workload '%s' (try: ",
                   Cli.WorkloadName.c_str());
      for (const Workload &Known : paperWorkloads())
        std::fprintf(stderr, "%s ", Known.Name.c_str());
      std::fprintf(stderr, ")\n");
      return 2;
    }
    Source = W->Source;
  } else if (!Cli.InputFile.empty()) {
    std::ifstream In(Cli.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   Cli.InputFile.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  } else {
    usage();
    return 2;
  }

  // Textual IR input: parse, verify, interpret.
  if (Cli.InputFile.size() > 3 &&
      Cli.InputFile.compare(Cli.InputFile.size() - 3, 3, ".ir") == 0) {
    DiagnosticEngine Diags;
    auto M = parseIR(Source, Diags);
    if (!M || !verifyModule(*M, Diags)) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    if (Cli.DumpIR) {
      std::printf("%s", printIR(*M).c_str());
      return 0;
    }
    InterpResult R = interpretModule(*M);
    if (!R.ok()) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("output:");
    for (int64_t V : R.Output)
      std::printf(" %lld", static_cast<long long>(V));
    std::printf("\n");
    return 0;
  }

  if (Cli.Compare) {
    SchemeComparison C =
        compareSchemes(Source, Cli.Compile, Cli.Sim.Cache);
    if (!C.ok()) {
      std::fprintf(stderr, "error: %s\n", C.Error.c_str());
      return 1;
    }
    std::printf("static: %s\n", C.StaticStats.str().c_str());
    std::printf("%-14s %14s %14s\n", "", "conventional", "unified");
    std::printf("%-14s %14llu %14llu\n", "cache traffic",
                static_cast<unsigned long long>(
                    C.Conventional.Cache.cacheTraffic()),
                static_cast<unsigned long long>(
                    C.Unified.Cache.cacheTraffic()));
    std::printf("%-14s %14llu %14llu\n", "bus traffic",
                static_cast<unsigned long long>(
                    C.Conventional.Cache.busTraffic()),
                static_cast<unsigned long long>(
                    C.Unified.Cache.busTraffic()));
    std::printf("reduction: %.1f%% cache, %.1f%% bus; dynamic "
                "unambiguous %.1f%%\n",
                C.cacheTrafficReductionPercent(),
                C.busTrafficReductionPercent(),
                C.dynamicUnambiguousPercent());
    return 0;
  }

  if (Cli.DumpAST) {
    DiagnosticEngine Diags;
    auto TU = parseAndAnalyze(Source, Diags);
    if (!TU) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::printf("%s", printAST(*TU).c_str());
    return 0;
  }

  DiagnosticEngine Diags;
  CompileResult Compiled = compileProgram(Source, Cli.Compile, Diags);
  if (!Compiled.Ok) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (Cli.DumpIR) {
    std::printf("%s", printIR(*Compiled.Module.IR).c_str());
    return 0;
  }
  if (Cli.DumpAsm) {
    std::printf("%s", Compiled.Program.str().c_str());
    return 0;
  }

  Simulator S(Cli.Sim);
  SimResult R = S.run(Compiled.Program);
  if (!R.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  printRunReport(R, Cli.Stats);
  return 0;
}
