//===- urcmc.cpp - URCM command-line compiler driver ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Compile, inspect and simulate MC programs from the shell:
//
//   urcmc prog.mc                      compile + run (unified scheme)
//   urcmc --workload=Queen --compare   run a built-in benchmark under
//                                      both schemes and report traffic
//   urcmc prog.mc --dump-ir            print the IR after allocation
//   urcmc prog.mc --dump-asm           print annotated URCM-RISC code
//   urcmc prog.mc --scheme=deadtag --era --cache-lines=64 --assoc=4
//
// Flags:
//   --era                 scalar locals in memory (Figure-5 codegen)
//   --cleanup             run copy-prop/LVN/DCE (+ --dse for dead stores)
//   --promote             loop promotion of unaliased scalars
//   --O1                  --promote + --cleanup
//   --scheme=S            conventional | bypass | deadtag | unified |
//                         reuse   (default unified)
//   --regs=N              allocatable registers (default 24)
//   --alloc=P             chaitin | usage  (default chaitin)
//   --cache-lines=N --assoc=N --line-words=N
//   --policy=lru|fifo|random|plru|srrip|min|bypass
//                         replacement policy for the live cache and for
//                         every --sweep row (min and bypass are
//                         replay-only: they require --sweep)
//   --icache              model the instruction cache too
//   --no-fuse             disable superinstruction fusion (A/B baseline)
//   --dump-ast --dump-ir --dump-asm --stats --compare
//   --workload=NAME       use a built-in benchmark instead of a file
//   --passes=P1,P2,...    run an explicit pass pipeline instead of the
//                         default (names: verify promote cleanup copyprop
//                         lvn dce dse regalloc unified codegen)
//   --print-pipeline      print the canonical pipeline text and exit
//   --verify-each         verify after every mutating pass (the default)
//   --no-verify           skip IR verification
//   --print-after-all     print the IR after every pass to stderr
//   --sweep=S1,S2,...     replay the run against fully-associative
//                         caches of the given sizes under --policy
//                         (hinted and conventional) and print a
//                         traffic table
//   --telemetry           print the telemetry summary to stderr on exit
//   --telemetry-json=F    write the telemetry JSON snapshot to F
//   --trace-out=F         write a Chrome trace-event file to F
//   --profile-refs=F      write the per-reference attribution profile
//                         (docs/profile_schema.json) to F
//   --profile-annotate=F  write the annotated per-line source report to F
//   --metrics-out=F       sample telemetry into a JSONL time series at F
//   --metrics-interval-ms=N   sampling period for --metrics-out
//   -Rurcm-classify       print per-reference classification remarks
//   --help --version
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/ir/IRParser.h"
#include "urcm/pass/Pipeline.h"
#include "urcm/ir/Interpreter.h"
#include "urcm/ir/Verifier.h"
#include "urcm/lang/Sema.h"
#include "urcm/sim/RefProfile.h"
#include "urcm/sim/SweepEngine.h"
#include "urcm/sim/TraceStore.h"
#include "urcm/support/Telemetry.h"
#include "urcm/workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace urcm;

namespace {

struct CliOptions {
  std::string InputFile;
  std::string WorkloadName;
  CompileOptions Compile;
  SimConfig Sim;
  bool DumpAST = false;
  bool DumpIR = false;
  bool DumpAsm = false;
  bool Stats = false;
  bool Compare = false;
  bool PrintPipeline = false;
  std::vector<uint32_t> SweepSizes;
  /// Replacement policy from --policy=; applied to the live cache when
  /// live-eligible and to every sweep row (replay-only policies need
  /// --sweep).
  CachePolicy Policy = CachePolicy::LRU;
  bool PolicySet = false;
  /// Intra-trace replay sharding for --sweep: 1 sequential, 0 auto.
  uint32_t Shards = 1;
  /// Persistent trace store directory for --sweep (empty = off).
  std::string TraceStoreDir;
  std::string TraceOut;
  std::string TelemetryJson;
  /// Per-reference attribution profile outputs (empty = off).
  std::string ProfileRefs;
  std::string ProfileAnnotate;
  /// Time-series metrics JSONL output (empty = off).
  std::string MetricsOut;
  uint32_t MetricsIntervalMs = 200;
  bool TelemetrySummary = false;
  bool ClassifyRemarks = false;

  bool wantsTelemetry() const {
    return !TraceOut.empty() || !TelemetryJson.empty() ||
           !MetricsOut.empty() || TelemetrySummary || ClassifyRemarks;
  }
  bool wantsProfile() const {
    return !ProfileRefs.empty() || !ProfileAnnotate.empty();
  }
};

void usage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: urcmc <file.mc> [flags] | urcmc --workload=NAME [flags]\n"
      "\n"
      "compilation:\n"
      "  --era                scalar locals in memory (Figure-5 codegen)\n"
      "  --promote            loop promotion of unaliased scalars\n"
      "  --cleanup            copy-prop + LVN + DCE (--dse adds dead-store "
      "elim)\n"
      "  --O1                 --promote + --cleanup\n"
      "  --scheme=S           conventional|bypass|deadtag|unified|reuse\n"
      "  --regs=N             allocatable registers (>= 8, default 24)\n"
      "  --alloc=P            chaitin | usage\n"
      "pipeline:\n"
      "  --passes=P1,P2,...   explicit pass pipeline (verify promote "
      "cleanup\n"
      "                       copyprop lvn dce dse regalloc unified "
      "codegen)\n"
      "  --print-pipeline     print the canonical pipeline text and exit\n"
      "  --verify-each        verify after every mutating pass (default "
      "on)\n"
      "  --no-verify          skip IR verification\n"
      "  --print-after-all    print the IR after every pass to stderr\n"
      "simulation:\n"
      "  --cache-lines=N --assoc=N --line-words=N\n"
      "  --policy=P           lru|fifo|random|plru|srrip|min|bypass "
      "(live\n"
      "                       cache and every sweep row; min/bypass are\n"
      "                       replay-only and require --sweep)\n"
      "  --icache             model the instruction cache too\n"
      "  --no-fuse            disable superinstruction fusion in the\n"
      "                       predecoded engine (A/B baseline; results\n"
      "                       are bit-identical either way)\n"
      "  --sweep=S1,S2,...    replay against fully-associative caches "
      "of\n"
      "                       the given line counts (hinted and "
      "conventional)\n"
      "  --shards=N|auto      parallelize each sweep replay N ways "
      "(auto =\n"
      "                       thread-pool width; results bit-identical; "
      "default 1)\n"
      "  --trace-store=DIR    persist recorded traces under DIR and "
      "serve\n"
      "                       repeat sweeps from them (skips "
      "re-simulation)\n"
      "inspection:\n"
      "  --dump-ast --dump-ir --dump-asm --stats --compare\n"
      "  --workload=NAME      built-in benchmark instead of a file\n"
      "observability:\n"
      "  --telemetry          print counter/phase summary to stderr\n"
      "  --telemetry-json=F   write the telemetry JSON snapshot to F\n"
      "  --trace-out=F        write Chrome trace-event JSON to F\n"
      "  --profile-refs=F     write the per-reference attribution "
      "profile\n"
      "                       (docs/profile_schema.json) to F\n"
      "  --profile-annotate=F write the annotated per-line source "
      "report to F\n"
      "  --metrics-out=F      sample telemetry into JSONL time series "
      "at F\n"
      "  --metrics-interval-ms=N   sampling period (default 200)\n"
      "  -Rurcm-classify      per-reference classification remarks on "
      "stderr\n"
      "  --help --version\n");
}

bool parseFlag(CliOptions &Cli, const std::string &Arg) {
  auto Value = [&](const char *Prefix) -> const char * {
    size_t Len = std::strlen(Prefix);
    if (Arg.compare(0, Len, Prefix) == 0)
      return Arg.c_str() + Len;
    return nullptr;
  };

  if (Arg == "--era") {
    Cli.Compile.IRGen.ScalarLocalsInMemory = true;
    return true;
  }
  if (Arg == "--cleanup") {
    Cli.Compile.RunCleanup = true;
    return true;
  }
  if (Arg == "--dse") {
    Cli.Compile.RunCleanup = true;
    Cli.Compile.Transforms.DeadStoreElimination = true;
    return true;
  }
  if (Arg == "--promote") {
    Cli.Compile.PromoteLoopScalars = true;
    return true;
  }
  if (Arg == "--O1") {
    // The full optimizing pipeline: promotion + copy-prop + LVN + DCE.
    Cli.Compile.PromoteLoopScalars = true;
    Cli.Compile.RunCleanup = true;
    return true;
  }
  if (Arg == "--dump-ast") {
    Cli.DumpAST = true;
    return true;
  }
  if (Arg == "--dump-ir") {
    Cli.DumpIR = true;
    return true;
  }
  if (Arg == "--dump-asm") {
    Cli.DumpAsm = true;
    return true;
  }
  if (Arg == "--stats") {
    Cli.Stats = true;
    return true;
  }
  if (Arg == "--compare") {
    Cli.Compare = true;
    return true;
  }
  if (Arg == "--icache") {
    Cli.Sim.ModelICache = true;
    return true;
  }
  if (Arg == "--no-fuse") {
    Cli.Sim.Fusion = false;
    return true;
  }
  if (const char *V = Value("--scheme=")) {
    std::string S = V;
    if (S == "conventional")
      Cli.Compile.Scheme = UnifiedOptions::conventional();
    else if (S == "bypass")
      Cli.Compile.Scheme = UnifiedOptions::bypassOnly();
    else if (S == "deadtag")
      Cli.Compile.Scheme = UnifiedOptions::deadTagOnly();
    else if (S == "unified")
      Cli.Compile.Scheme = UnifiedOptions::unified();
    else if (S == "reuse")
      Cli.Compile.Scheme = UnifiedOptions::reuseAware();
    else
      return false;
    return true;
  }
  if (const char *V = Value("--regs=")) {
    Cli.Compile.RegAlloc.NumColors = std::atoi(V);
    return Cli.Compile.RegAlloc.NumColors >= 8;
  }
  if (const char *V = Value("--alloc=")) {
    std::string S = V;
    if (S == "chaitin")
      Cli.Compile.RegAlloc.Policy = RegAllocPolicy::ChaitinBriggs;
    else if (S == "usage")
      Cli.Compile.RegAlloc.Policy = RegAllocPolicy::UsageCount;
    else
      return false;
    return true;
  }
  if (const char *V = Value("--cache-lines=")) {
    Cli.Sim.Cache.NumLines = std::atoi(V);
    return Cli.Sim.Cache.NumLines > 0;
  }
  if (const char *V = Value("--assoc=")) {
    Cli.Sim.Cache.Assoc = std::atoi(V);
    return Cli.Sim.Cache.Assoc > 0;
  }
  if (const char *V = Value("--line-words=")) {
    Cli.Sim.Cache.LineWords = std::atoi(V);
    return Cli.Sim.Cache.LineWords > 0;
  }
  if (const char *V = Value("--policy=")) {
    if (!parseCachePolicy(V, Cli.Policy))
      return false;
    Cli.PolicySet = true;
    // Replay-only policies (MIN, the liveness-bypass predictor) cannot
    // drive the live data cache; main() rejects them without --sweep
    // and runSweep keeps the base simulation on LRU.
    if (cachePolicyLiveEligible(Cli.Policy))
      Cli.Sim.Cache.Policy = Cli.Policy;
    return true;
  }
  if (const char *V = Value("--workload=")) {
    Cli.WorkloadName = V;
    return true;
  }
  if (const char *V = Value("--sweep=")) {
    Cli.SweepSizes.clear();
    for (const char *P = V; *P;) {
      char *End = nullptr;
      long Size = std::strtol(P, &End, 10);
      if (End == P || Size <= 0)
        return false;
      Cli.SweepSizes.push_back(static_cast<uint32_t>(Size));
      P = *End == ',' ? End + 1 : End;
      if (End != P && *End != ',')
        return false;
    }
    return !Cli.SweepSizes.empty();
  }
  if (const char *V = Value("--shards=")) {
    if (std::strcmp(V, "auto") == 0) {
      Cli.Shards = 0; // Resolved to the pool width by the engine.
      return true;
    }
    char *End = nullptr;
    long N = std::strtol(V, &End, 10);
    if (End == V || *End != '\0' || N <= 0 || N > (1 << 20))
      return false;
    Cli.Shards = static_cast<uint32_t>(N);
    return true;
  }
  if (const char *V = Value("--trace-store=")) {
    Cli.TraceStoreDir = V;
    return !Cli.TraceStoreDir.empty();
  }
  if (const char *V = Value("--trace-out=")) {
    Cli.TraceOut = V;
    return !Cli.TraceOut.empty();
  }
  if (const char *V = Value("--telemetry-json=")) {
    Cli.TelemetryJson = V;
    return !Cli.TelemetryJson.empty();
  }
  if (const char *V = Value("--profile-refs=")) {
    Cli.ProfileRefs = V;
    return !Cli.ProfileRefs.empty();
  }
  if (const char *V = Value("--profile-annotate=")) {
    Cli.ProfileAnnotate = V;
    return !Cli.ProfileAnnotate.empty();
  }
  if (const char *V = Value("--metrics-out=")) {
    Cli.MetricsOut = V;
    return !Cli.MetricsOut.empty();
  }
  if (const char *V = Value("--metrics-interval-ms=")) {
    char *End = nullptr;
    long N = std::strtol(V, &End, 10);
    if (End == V || *End != '\0' || N <= 0 || N > 60000)
      return false;
    Cli.MetricsIntervalMs = static_cast<uint32_t>(N);
    return true;
  }
  if (Arg == "--telemetry") {
    Cli.TelemetrySummary = true;
    return true;
  }
  if (const char *V = Value("--passes=")) {
    Cli.Compile.Passes = V;
    return !Cli.Compile.Passes.empty();
  }
  if (Arg == "--print-pipeline") {
    Cli.PrintPipeline = true;
    return true;
  }
  if (Arg == "--verify-each") {
    Cli.Compile.VerifyIR = true;
    return true;
  }
  if (Arg == "--no-verify") {
    Cli.Compile.VerifyIR = false;
    return true;
  }
  if (Arg == "--print-after-all") {
    Cli.Compile.PrintAfterAll = true;
    return true;
  }
  return false;
}

/// Resolves the current flags to a pipeline and prints its canonical
/// text (PassManager::str() round-trips through parsePassPipeline).
int printPipeline(const CliOptions &Cli) {
  PassManager PM;
  std::string Text =
      Cli.Compile.Passes.empty()
          ? defaultPipelineText(Cli.Compile.PromoteLoopScalars,
                                Cli.Compile.RunCleanup)
          : Cli.Compile.Passes;
  std::string Error;
  if (!parsePassPipeline(PM, Text, Error)) {
    std::fprintf(stderr, "error: invalid pass pipeline: %s\n",
                 Error.c_str());
    return 2;
  }
  std::printf("%s\n", PM.str().c_str());
  return 0;
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary);
  Out << Contents;
  Out.flush();
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  return true;
}

/// Replays the compiled program against fully-associative caches of the
/// requested sizes under the --policy= replacement policy (default
/// LRU), hinted and hint-stripped, and prints a traffic table. One
/// traced simulation serves every row (see SweepEngine.h).
int runSweep(const CliOptions &Cli, const MachineProgram &Program) {
  if (Cli.Policy == CachePolicy::TreePLRU) {
    for (uint32_t Size : Cli.SweepSizes)
      if (Size > 64 || (Size & (Size - 1)) != 0) {
        std::fprintf(stderr,
                     "error: --policy=plru needs power-of-two sweep "
                     "sizes <= 64 (tree bits live in one word per set; "
                     "sweep rows are fully associative); got %u\n",
                     Size);
        return 2;
      }
  }
  std::vector<SweepPoint> Points;
  for (uint32_t Size : Cli.SweepSizes) {
    SweepPoint P;
    P.Config.NumLines = Size;
    P.Config.Assoc = Size;
    P.Config.LineWords = 1;
    P.Config.Write = WritePolicy::WriteBack;
    P.Config.Policy = Cli.Policy;
    P.Config.Seed = Cli.Sim.Cache.Seed;
    P.Policy = Cli.Policy;
    Points.push_back(P);
    P.IgnoreHints = true;
    Points.push_back(P);
  }

  SweepEngine Engine;
  Engine.setShards(Cli.Shards);
  DiagnosticEngine StoreDiags;
  uint64_t Hash = 0;
  if (!Cli.TraceStoreDir.empty()) {
    Engine.setTraceStore(Cli.TraceStoreDir, &StoreDiags);
    Hash = traceContentHash(Program, Cli.Sim);
  }
  auto Prog = std::make_shared<MachineProgram>(Program);
  Engine.schedule("urcmc-sweep", "urcmc", Cli.Sim, Points,
                  [Prog](const SimConfig &Config) {
                    Simulator S(Config);
                    return S.run(*Prog);
                  },
                  Hash);
  Engine.run();
  // Store problems (stale/corrupt/unwritable) fall back to live
  // simulation; surface them without failing the sweep.
  if (!StoreDiags.diagnostics().empty())
    std::fprintf(stderr, "%s", StoreDiags.str().c_str());

  const SimResult &Base = Engine.base("urcmc-sweep");
  if (!Base.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", Base.Error.c_str());
    return 1;
  }
  std::printf("%-8s %16s %16s %16s %16s\n", "lines", "hinted-cache",
              "hinted-bus", "conv-cache", "conv-bus");
  for (size_t I = 0; I != Cli.SweepSizes.size(); ++I) {
    const CacheStats &Hinted = Engine.point("urcmc-sweep", 2 * I);
    const CacheStats &Conv = Engine.point("urcmc-sweep", 2 * I + 1);
    std::printf(
        "%-8u %16llu %16llu %16llu %16llu\n", Cli.SweepSizes[I],
        static_cast<unsigned long long>(Hinted.cacheTraffic()),
        static_cast<unsigned long long>(Hinted.busTraffic()),
        static_cast<unsigned long long>(Conv.cacheTraffic()),
        static_cast<unsigned long long>(Conv.busTraffic()));
  }
  return 0;
}

void printRunReport(const SimResult &R, bool Stats) {
  std::printf("output:");
  for (int64_t V : R.Output)
    std::printf(" %lld", static_cast<long long>(V));
  std::printf("\n");
  if (!Stats)
    return;
  std::printf("steps: %llu\n",
              static_cast<unsigned long long>(R.Steps));
  std::printf("data refs: %llu (unambiguous %.1f%%, bypassed %llu, "
              "dead-tagged %llu)\n",
              static_cast<unsigned long long>(R.Refs.total()),
              R.Refs.unambiguousFraction() * 100.0,
              static_cast<unsigned long long>(R.Refs.Bypassed),
              static_cast<unsigned long long>(R.Refs.LastRefTagged));
  std::printf("cache: %s\n", R.Cache.str().c_str());
  if (R.InstructionFetches != 0)
    std::printf("icache: fetches=%llu hit=%.2f%%\n",
                static_cast<unsigned long long>(R.InstructionFetches),
                R.ICache.hitRate() * 100.0);
  if (R.CoherenceViolations != 0)
    std::printf("WARNING: %llu coherence violations (unsound hints)\n",
                static_cast<unsigned long long>(R.CoherenceViolations));
}

/// The tool proper, after flag parsing and source loading. Factored out
/// of main so the telemetry exporters run after every exit path.
int runTool(const CliOptions &Cli, const std::string &Source) {
  // Textual IR input: parse, verify, interpret.
  if (Cli.InputFile.size() > 3 &&
      Cli.InputFile.compare(Cli.InputFile.size() - 3, 3, ".ir") == 0) {
    DiagnosticEngine Diags;
    auto M = parseIR(Source, Diags);
    if (!M || !verifyModule(*M, Diags)) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    if (Cli.DumpIR) {
      std::printf("%s", printIR(*M).c_str());
      return 0;
    }
    InterpResult R = interpretModule(*M);
    if (!R.ok()) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("output:");
    for (int64_t V : R.Output)
      std::printf(" %lld", static_cast<long long>(V));
    std::printf("\n");
    return 0;
  }

  if (Cli.Compare) {
    SchemeComparison C =
        compareSchemes(Source, Cli.Compile, Cli.Sim.Cache);
    if (!C.ok()) {
      std::fprintf(stderr, "error: %s\n", C.Error.c_str());
      return 1;
    }
    std::printf("static: %s\n", C.StaticStats.str().c_str());
    std::printf("%-14s %14s %14s\n", "", "conventional", "unified");
    std::printf("%-14s %14llu %14llu\n", "cache traffic",
                static_cast<unsigned long long>(
                    C.Conventional.Cache.cacheTraffic()),
                static_cast<unsigned long long>(
                    C.Unified.Cache.cacheTraffic()));
    std::printf("%-14s %14llu %14llu\n", "bus traffic",
                static_cast<unsigned long long>(
                    C.Conventional.Cache.busTraffic()),
                static_cast<unsigned long long>(
                    C.Unified.Cache.busTraffic()));
    std::printf("reduction: %.1f%% cache, %.1f%% bus; dynamic "
                "unambiguous %.1f%%\n",
                C.cacheTrafficReductionPercent(),
                C.busTrafficReductionPercent(),
                C.dynamicUnambiguousPercent());
    return 0;
  }

  if (Cli.DumpAST) {
    DiagnosticEngine Diags;
    auto TU = parseAndAnalyze(Source, Diags);
    if (!TU) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::printf("%s", printAST(*TU).c_str());
    return 0;
  }

  DiagnosticEngine Diags;
  CompileResult Compiled = compileProgram(Source, Cli.Compile, Diags);
  if (!Compiled.Ok) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (Cli.DumpIR) {
    std::printf("%s", printIR(*Compiled.Module.IR).c_str());
    return 0;
  }
  if (Cli.DumpAsm) {
    std::printf("%s", Compiled.Program.str().c_str());
    return 0;
  }

  if (!Cli.SweepSizes.empty()) {
    if (Cli.wantsProfile()) {
      std::fprintf(stderr, "error: --profile-refs/--profile-annotate "
                           "apply to the plain run, not --sweep\n");
      return 2;
    }
    return runSweep(Cli, Compiled.Program);
  }

  // The attribution table for --profile-refs/--profile-annotate: sized
  // to the static reference table and filled by the live data cache.
  RefAttribution Attr;
  SimConfig SimCfg = Cli.Sim;
  if (Cli.wantsProfile()) {
    Attr = RefAttribution(
        static_cast<uint32_t>(Compiled.Program.RefTable.size()));
    SimCfg.Attribution = &Attr;
  }

  Simulator S(SimCfg);
  SimResult R = S.run(Compiled.Program);
  if (!R.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  printRunReport(R, Cli.Stats);

  const std::string Workload =
      Cli.WorkloadName.empty() ? Cli.InputFile : Cli.WorkloadName;
  if (!Cli.ProfileRefs.empty() &&
      !writeFile(Cli.ProfileRefs,
                 refProfileJSON(Compiled.Program, Attr, Workload)))
    return 1;
  if (!Cli.ProfileAnnotate.empty() &&
      !writeFile(Cli.ProfileAnnotate,
                 refProfileAnnotate(Compiled.Program, Attr, Source)))
    return 1;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Cli;
  for (int A = 1; A != argc; ++A) {
    std::string Arg = argv[A];
    if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("urcmc (urcm) 0.4\n");
      return 0;
    }
    if (Arg == "-Rurcm-classify") {
      Cli.ClassifyRemarks = true;
      continue;
    }
    if (Arg.rfind("-", 0) == 0) {
      if (!parseFlag(Cli, Arg)) {
        std::fprintf(stderr, "error: unknown or invalid flag '%s'\n",
                     Arg.c_str());
        usage(stderr);
        return 2;
      }
    } else if (Cli.InputFile.empty()) {
      Cli.InputFile = Arg;
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n",
                   Arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (Cli.PolicySet && !cachePolicyLiveEligible(Cli.Policy) &&
      Cli.SweepSizes.empty()) {
    std::fprintf(stderr,
                 "error: --policy=%s is replay-only (it needs the "
                 "recorded trace); combine it with --sweep=\n",
                 cachePolicyName(Cli.Policy));
    return 2;
  }

  // --print-pipeline needs no input: it reports what the flags resolve
  // to, so review scripts can pin the pipeline without compiling.
  if (Cli.PrintPipeline)
    return printPipeline(Cli);

  std::string Source;
  if (!Cli.WorkloadName.empty()) {
    const Workload *W = findWorkload(Cli.WorkloadName);
    if (!W) {
      std::fprintf(stderr, "error: unknown workload '%s' (try: ",
                   Cli.WorkloadName.c_str());
      for (const Workload &Known : paperWorkloads())
        std::fprintf(stderr, "%s ", Known.Name.c_str());
      std::fprintf(stderr, ")\n");
      return 2;
    }
    Source = W->Source;
  } else if (!Cli.InputFile.empty()) {
    std::ifstream In(Cli.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   Cli.InputFile.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  } else {
    std::fprintf(stderr, "error: no input file or --workload\n");
    usage(stderr);
    return 2;
  }

  if (Cli.wantsTelemetry()) {
    telemetry::setEnabled(true);
    telemetry::setThreadName("main");
    if (Cli.ClassifyRemarks)
      telemetry::enableClassifyCapture(stderr);
  }
  std::unique_ptr<telemetry::MetricsSampler> Sampler;
  if (!Cli.MetricsOut.empty())
    Sampler = std::make_unique<telemetry::MetricsSampler>(
        Cli.MetricsOut, Cli.MetricsIntervalMs);

  int Code = runTool(Cli, Source);

  if (Sampler)
    Sampler->stop(); // Flush the final sample before the exporters run.

  if (Cli.TelemetrySummary)
    std::fprintf(stderr, "%s", telemetry::summaryText().c_str());
  if (!Cli.TelemetryJson.empty() &&
      !writeFile(Cli.TelemetryJson, telemetry::snapshotJSON()))
    Code = Code == 0 ? 1 : Code;
  if (!Cli.TraceOut.empty() &&
      !writeFile(Cli.TraceOut, telemetry::chromeTraceJSON()))
    Code = Code == 0 ? 1 : Code;
  return Code;
}
